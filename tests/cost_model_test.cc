#include <gtest/gtest.h>

#include "cluster/config.h"
#include "mm/cost_model.h"

namespace distme::mm {
namespace {

// The paper's Figure 9 dataset: 70K×70K×70K, sparsity 0.5, block 1000².
MMProblem Fig9Problem() {
  MMProblem p;
  p.a = MatrixDescriptor::Dense(70000, 70000, 1000);
  p.a.sparsity = 0.5;
  p.b = MatrixDescriptor::Dense(70000, 70000, 1000);
  p.b.sparsity = 0.5;
  return p;
}

TEST(CostModelTest, Figure9CostValues) {
  // Figure 9(b) reports Cost() = 46.55e9 at (4,7,4), 51.45e9 at (6,7,4) and
  // (4,7,5), 56.35e9 at (8,7,4) and (4,7,6), 61.25e9 at (10,7,4) and (4,7,7).
  const MMProblem p = Fig9Problem();
  EXPECT_NEAR(CuboidCostElements(p, {4, 7, 4}), 46.55e9, 1e6);
  EXPECT_NEAR(CuboidCostElements(p, {6, 7, 4}), 51.45e9, 1e6);
  EXPECT_NEAR(CuboidCostElements(p, {4, 7, 5}), 51.45e9, 1e6);
  EXPECT_NEAR(CuboidCostElements(p, {8, 7, 4}), 56.35e9, 1e6);
  EXPECT_NEAR(CuboidCostElements(p, {4, 7, 6}), 56.35e9, 1e6);
  EXPECT_NEAR(CuboidCostElements(p, {10, 7, 4}), 61.25e9, 1e6);
  EXPECT_NEAR(CuboidCostElements(p, {4, 7, 7}), 61.25e9, 1e6);
}

TEST(CostModelTest, CuboidGeneralizesBmm) {
  // (I, 1, 1)-cuboid partitioning works like BMM (Section 3.1): same
  // repartition communication (T = I tasks, B replicated to each).
  MMProblem p = MMProblem::DenseSquareBlocks(4000, 4000, 4000, 1000);
  const AnalyticCost bmm = BmmCost(p, p.I());
  const AnalyticCost cuboid = CuboidCost(p, {p.I(), 1, 1});
  EXPECT_DOUBLE_EQ(bmm.repartition_elements, cuboid.repartition_elements);
}

TEST(CostModelTest, CuboidGeneralizesCpmm) {
  // (1, 1, K)-cuboid partitioning works like CPMM.
  MMProblem p = MMProblem::DenseSquareBlocks(4000, 4000, 4000, 1000);
  const AnalyticCost cpmm = CpmmCost(p, p.K());
  const AnalyticCost cuboid = CuboidCost(p, {1, 1, p.K()});
  EXPECT_DOUBLE_EQ(cpmm.repartition_elements, cuboid.repartition_elements);
  EXPECT_DOUBLE_EQ(cpmm.aggregation_elements, cuboid.aggregation_elements);
}

TEST(CostModelTest, CuboidGeneralizesRmm) {
  // (I, J, K)-cuboid partitioning works like RMM.
  MMProblem p = MMProblem::DenseSquareBlocks(4000, 5000, 3000, 1000);
  const AnalyticCost rmm = RmmCost(p, p.I() * p.J());
  const AnalyticCost cuboid = CuboidCost(p, {p.I(), p.J(), p.K()});
  EXPECT_DOUBLE_EQ(rmm.repartition_elements, cuboid.repartition_elements);
  EXPECT_DOUBLE_EQ(rmm.aggregation_elements, cuboid.aggregation_elements);
}

TEST(CostModelTest, Table2BmmRow) {
  MMProblem p = MMProblem::DenseSquareBlocks(3000, 2000, 1000, 1000);
  const AnalyticCost c = BmmCost(p, 3);
  // |A| + T·|B|, no aggregation.
  EXPECT_DOUBLE_EQ(c.repartition_elements, 6e6 + 3 * 2e6);
  EXPECT_DOUBLE_EQ(c.aggregation_elements, 0.0);
  EXPECT_DOUBLE_EQ(c.max_tasks, 3.0);  // I
  // |A|/T + |B| + |C|/T bytes.
  EXPECT_DOUBLE_EQ(c.memory_per_task_bytes, (6e6 / 3 + 2e6 + 3e6 / 3) * 8);
}

TEST(CostModelTest, Table2CpmmRow) {
  MMProblem p = MMProblem::DenseSquareBlocks(3000, 2000, 1000, 1000);
  const AnalyticCost c = CpmmCost(p, 2);
  EXPECT_DOUBLE_EQ(c.repartition_elements, 6e6 + 2e6);
  EXPECT_DOUBLE_EQ(c.aggregation_elements, 2 * 3e6);  // T·|C|
  EXPECT_DOUBLE_EQ(c.max_tasks, 2.0);                 // K
}

TEST(CostModelTest, Table2RmmRow) {
  MMProblem p = MMProblem::DenseSquareBlocks(3000, 2000, 1000, 1000);
  // I=3, K=2, J=1.
  const AnalyticCost c = RmmCost(p, 6);
  EXPECT_DOUBLE_EQ(c.repartition_elements, 1 * 6e6 + 3 * 2e6);  // J|A|+I|B|
  EXPECT_DOUBLE_EQ(c.aggregation_elements, 2 * 3e6);            // K|C|
  EXPECT_DOUBLE_EQ(c.max_tasks, 6.0);  // I·J·K
}

TEST(CostModelTest, MemDecreasesWithMorePartitions) {
  MMProblem p = MMProblem::DenseSquareBlocks(10000, 10000, 10000, 1000);
  EXPECT_GT(CuboidMemBytes(p, {1, 1, 1}), CuboidMemBytes(p, {2, 2, 2}));
  EXPECT_GT(CuboidMemBytes(p, {2, 2, 2}), CuboidMemBytes(p, {5, 5, 5}));
}

TEST(CostModelTest, CostIncreasesWithMorePartitions) {
  MMProblem p = MMProblem::DenseSquareBlocks(10000, 10000, 10000, 1000);
  EXPECT_LT(CuboidCostElements(p, {1, 1, 1}), CuboidCostElements(p, {2, 1, 1}));
  EXPECT_LT(CuboidCostElements(p, {1, 1, 1}), CuboidCostElements(p, {1, 2, 1}));
  EXPECT_LT(CuboidCostElements(p, {1, 1, 1}), CuboidCostElements(p, {1, 1, 2}));
}

TEST(CostModelTest, SparseInputsShipFewerElements) {
  MMProblem dense = MMProblem::DenseSquareBlocks(5000, 5000, 5000, 1000);
  MMProblem sparse = dense;
  sparse.a.sparsity = 0.01;
  sparse.a.stored_dense = false;
  EXPECT_LT(CuboidCostElements(sparse, {2, 2, 2}),
            CuboidCostElements(dense, {2, 2, 2}));
  // But C is still estimated fully dense (Section 2.2.2): the R·|C| term is
  // unchanged.
  EXPECT_DOUBLE_EQ(CuboidCost(sparse, {1, 1, 2}).aggregation_elements,
                   CuboidCost(dense, {1, 1, 2}).aggregation_elements);
}

TEST(CostModelTest, MemoryOfSingleVoxelIsThreeBlocks) {
  MMProblem p = MMProblem::DenseSquareBlocks(4000, 4000, 4000, 1000);
  const CuboidSpec all{p.I(), p.J(), p.K()};
  // One voxel per task: one A block + one B block + one C block.
  EXPECT_DOUBLE_EQ(CuboidMemBytes(p, all), 3.0 * 1000 * 1000 * 8);
}

}  // namespace
}  // namespace distme::mm
