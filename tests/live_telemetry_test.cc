// Live-telemetry suite: flight-recorder ring semantics (wraparound, fatal
// dump), Prometheus text rendering, the loopback HTTP scrape endpoint, the
// background sampler's retention/monotonicity, and the straggler watchdog —
// plus the end-to-end paths through Session (live scrape of a real run,
// flight dump on an injected task failure).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/session.h"
#include "obs/flight_recorder.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/prom_export.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"

namespace distme {
namespace {

// --- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorderTest, RecordsEventsInOrder) {
  obs::FlightRecorder flight(64);
  EXPECT_EQ(flight.capacity(), 64u);
  flight.Record(obs::FlightEventType::kRunStart, -1, -1, 12);
  flight.Record(obs::FlightEventType::kTaskStart, 2, 3, 7, 0, "first try");
  flight.Record(obs::FlightEventType::kRunFinish, -1, -1, 12, 0);

  EXPECT_EQ(flight.TotalRecorded(), 3u);
  const std::vector<obs::FlightEvent> events = flight.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, obs::FlightEventType::kRunStart);
  EXPECT_EQ(events[0].a, 12);
  EXPECT_EQ(events[1].type, obs::FlightEventType::kTaskStart);
  EXPECT_EQ(events[1].node, 2);
  EXPECT_EQ(events[1].slot, 3);
  EXPECT_EQ(events[1].a, 7);
  EXPECT_STREQ(events[1].detail, "first try");
  EXPECT_EQ(events[2].type, obs::FlightEventType::kRunFinish);
  // Sequence numbers are contiguous and timestamps never go backwards.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::FlightRecorder(1).capacity(), 64u);
  EXPECT_EQ(obs::FlightRecorder(100).capacity(), 128u);
  EXPECT_EQ(obs::FlightRecorder(4096).capacity(), 4096u);
}

TEST(FlightRecorderTest, RingWrapsKeepingTheMostRecentEvents) {
  constexpr uint64_t kTotal = 200;
  obs::FlightRecorder flight(64);
  for (uint64_t i = 0; i < kTotal; ++i) {
    flight.Record(obs::FlightEventType::kBlockFetch, 0, 0,
                  static_cast<int64_t>(i));
  }
  EXPECT_EQ(flight.TotalRecorded(), kTotal);
  const std::vector<obs::FlightEvent> events = flight.Snapshot();
  // The ring holds exactly the last `capacity` events, oldest first.
  ASSERT_EQ(events.size(), flight.capacity());
  EXPECT_EQ(events.front().seq, kTotal - flight.capacity() + 1);
  EXPECT_EQ(events.back().seq, kTotal);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(FlightRecorderTest, EventTypeNamesCoverTheEnum) {
  EXPECT_STREQ(obs::FlightEventTypeName(obs::FlightEventType::kRunStart),
               "run_start");
  EXPECT_STREQ(
      obs::FlightEventTypeName(obs::FlightEventType::kWatchdogStraggler),
      "watchdog_straggler");
  EXPECT_STREQ(obs::FlightEventTypeName(obs::FlightEventType::kFatal),
               "fatal");
  EXPECT_STREQ(obs::FlightEventTypeName(obs::FlightEventType::kNumTypes),
               "unknown");
}

TEST(FlightRecorderTest, ToJsonCarriesEventsAndDetail) {
  obs::FlightRecorder flight(64);
  flight.Record(obs::FlightEventType::kTaskStart, 1, 0, 5, 1, "attempt 1");
  const std::string json = flight.ToJson();
  EXPECT_NE(json.find("\"total_recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"task_start\""), std::string::npos);
  EXPECT_NE(json.find("\"attempt 1\""), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFileWritesJson) {
  const std::string path = testing::TempDir() + "/flight_ring.json";
  obs::FlightRecorder flight(64);
  flight.Record(obs::FlightEventType::kMemHighWater, 0, 2, 1024, 4096);
  ASSERT_TRUE(flight.DumpToFile(path).ok());
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"mem_high_water\""), std::string::npos);
}

// value()/ValueOrDie() on an error Result aborts; with an installed fatal
// dump the flight-recorder ring must land on stderr before the process dies.
TEST(FlightRecorderDeathTest, FatalResultAccessDumpsTheRing) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        obs::FlightRecorder flight(64);
        flight.InstallFatalDump();
        flight.Record(obs::FlightEventType::kTaskStart, 0, 1, 42, 0,
                      "doomed task");
        Result<int> r(Status::Internal("injected fatal"));
        (void)r.ValueOrDie();
      },
      "doomed task");
}

// --- Prometheus rendering ---------------------------------------------------

TEST(PrometheusExportTest, NameSanitization) {
  EXPECT_EQ(obs::PrometheusName("distme.task.seconds"),
            "distme_task_seconds");
  EXPECT_EQ(obs::PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(obs::PrometheusName("a-b c"), "a_b_c");
  EXPECT_EQ(obs::PrometheusName("ok_name:sub"), "ok_name:sub");
}

TEST(PrometheusExportTest, LabelValueEscaping) {
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("a\nb"), "a\\nb");
}

TEST(PrometheusExportTest, RendersCounterGaugeHistogramFamilies) {
  obs::MetricsRegistry registry;
  registry.GetCounter("distme.test.requests", {{"reason", "a\"b"}})->Add(3);
  registry.GetGauge("distme.test.depth")->Set(-2);
  obs::Histogram* hist = registry.GetHistogram("distme.test.seconds");
  hist->Observe(0.5);
  hist->Observe(3.0);

  const std::string text = obs::PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE distme_test_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("distme_test_requests{reason=\"a\\\"b\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE distme_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("distme_test_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE distme_test_seconds histogram"),
            std::string::npos);
  // Cumulative buckets close with +Inf at the total count.
  EXPECT_NE(text.find("distme_test_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("distme_test_seconds_sum 3.5"), std::string::npos);
  EXPECT_NE(text.find("distme_test_seconds_count 2"), std::string::npos);
}

TEST(PrometheusExportTest, NonFiniteDoublesRenderAsExpositionTokens) {
  // Craft a snapshot point directly: a histogram whose sum overflowed to
  // +inf must render the exposition token, never a locale-dependent "inf".
  obs::MetricsSnapshot snapshot;
  obs::MetricPoint point;
  point.name = "distme.test.overflow";
  point.kind = obs::MetricKind::kHistogram;
  point.value = 1;
  point.sum = std::numeric_limits<double>::infinity();
  point.buckets.assign(obs::Histogram::kBuckets, 0);
  snapshot.points.push_back(point);

  const std::string text = obs::PrometheusText(snapshot);
  EXPECT_NE(text.find("distme_test_overflow_sum +Inf"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

// --- HTTP endpoint ----------------------------------------------------------

/// Issues one HTTP/1.0 request against 127.0.0.1:`port` and returns the raw
/// response (status line, headers, body). Empty string on connect failure.
std::string HttpRequest(int port, const std::string& path,
                        const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpEndpointTest, ServesHandlerOverLoopback) {
  obs::HttpEndpoint endpoint([](const std::string& path) {
    obs::HttpResponse response;
    if (path == "/hello") {
      response.body = "hello world\n";
    } else {
      response.status = 404;
      response.body = "not found\n";
    }
    return response;
  });
  ASSERT_TRUE(endpoint.Start(0).ok());  // ephemeral port
  ASSERT_GT(endpoint.port(), 0);
  EXPECT_TRUE(endpoint.running());

  const std::string ok = HttpRequest(endpoint.port(), "/hello");
  EXPECT_NE(ok.find("200"), std::string::npos);
  EXPECT_NE(ok.find("hello world"), std::string::npos);

  // Query strings are stripped before the handler sees the path.
  const std::string with_query =
      HttpRequest(endpoint.port(), "/hello?verbose=1");
  EXPECT_NE(with_query.find("hello world"), std::string::npos);

  const std::string missing = HttpRequest(endpoint.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string post = HttpRequest(endpoint.port(), "/hello", "POST");
  EXPECT_NE(post.find("405"), std::string::npos);

  EXPECT_GE(endpoint.requests_served(), 4);
  endpoint.Stop();
  endpoint.Stop();  // idempotent
  EXPECT_FALSE(endpoint.running());
}

/// Sends raw bytes (not necessarily valid HTTP) to 127.0.0.1:`port`. When
/// `read_response` is false the socket is closed immediately after the send
/// — a client that vanished before the server could reply.
std::string RawRequest(int port, const std::string& bytes,
                       bool read_response = true) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  if (read_response) {
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

TEST(HttpEndpointTest, RejectsMalformedAndOversizedRequests) {
  obs::HttpEndpoint endpoint([](const std::string& path) {
    obs::HttpResponse response;
    if (path != "/hello") response.status = 404;
    response.body = path + "\n";
    return response;
  });
  ASSERT_TRUE(endpoint.Start(0).ok());

  // A request line with no method/path shape.
  const std::string garbage =
      RawRequest(endpoint.port(), "GARBAGE\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos);
  EXPECT_NE(garbage.find("malformed request line"), std::string::npos);

  // Headers that never terminate within the 8 KiB bound.
  const std::string oversized =
      RawRequest(endpoint.port(), std::string(9000, 'A'));
  EXPECT_NE(oversized.find("400"), std::string::npos);
  EXPECT_NE(oversized.find("request too large"), std::string::npos);

  // A method without a path ("GET" alone on the request line).
  const std::string no_path = RawRequest(endpoint.port(), "GET\r\n\r\n");
  EXPECT_NE(no_path.find("400"), std::string::npos);

  // A path that does not start with '/'.
  const std::string bad_path =
      RawRequest(endpoint.port(), "GET hello HTTP/1.0\r\n\r\n");
  EXPECT_NE(bad_path.find("400"), std::string::npos);
  EXPECT_NE(bad_path.find("malformed request path"), std::string::npos);

  // Routing still works after the rejects, and unknown routes are 404.
  const std::string ok = HttpRequest(endpoint.port(), "/hello");
  EXPECT_NE(ok.find("200"), std::string::npos);
  const std::string missing = HttpRequest(endpoint.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  endpoint.Stop();
}

TEST(HttpEndpointTest, SurvivesClientDisconnectMidResponse) {
  // A response far larger than the socket buffers, so the server is still
  // writing when the client goes away (MSG_NOSIGNAL turns the would-be
  // SIGPIPE into a send error the serve loop absorbs).
  obs::HttpEndpoint endpoint([](const std::string&) {
    obs::HttpResponse response;
    response.body.assign(8 << 20, 'x');
    return response;
  });
  ASSERT_TRUE(endpoint.Start(0).ok());

  for (int i = 0; i < 3; ++i) {
    RawRequest(endpoint.port(), "GET /big HTTP/1.0\r\n\r\n",
               /*read_response=*/false);
  }

  // The accept thread must still be alive and serving.
  const std::string after = HttpRequest(endpoint.port(), "/again");
  EXPECT_NE(after.find("200"), std::string::npos);
  EXPECT_TRUE(endpoint.running());
  endpoint.Stop();
}

// --- Sampler ----------------------------------------------------------------

TEST(SamplerTest, RetentionBoundsTheSeriesAndTimestampsIncrease) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("distme.test.ticks");
  obs::Sampler sampler(&registry, nullptr,
                       {.period_ms = 1, .max_samples = 5});
  for (int i = 0; i < 8; ++i) {
    counter->Add(1);
    sampler.SampleOnce();
  }
  EXPECT_EQ(sampler.total_samples(), 8);
  const std::vector<obs::Sample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 5u);  // retention dropped the oldest three
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].ts_us, samples[i].ts_us);  // strictly monotonic
  }
  // The newest sample sees the final counter value; the oldest retained one
  // was taken at tick 4.
  const obs::MetricPoint* last = samples.back().metrics.Find("distme.test.ticks");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->value, 8);
}

TEST(SamplerTest, BackgroundThreadSamplesAndStops) {
  obs::MetricsRegistry registry;
  obs::Sampler sampler(&registry, nullptr,
                       {.period_ms = 1, .max_samples = 1000});
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GT(sampler.total_samples(), 0);
  const std::vector<obs::Sample> samples = sampler.Samples();
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].ts_us, samples[i].ts_us);
  }
}

TEST(SamplerTest, CapturesCommMatrixSummary) {
  obs::MetricsRegistry registry;
  obs::CommMatrix comm;
  comm.Record(obs::CommStage::kRepartition, 0, 1, 100);
  comm.Record(obs::CommStage::kAggregation, 1, 0, 50);
  obs::Sampler sampler(&registry, &comm);
  sampler.SampleOnce();
  const std::vector<obs::Sample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].comm_total_bytes, 150);
  EXPECT_EQ(samples[0].comm_max_link_bytes, 100);
}

// --- Watchdog ---------------------------------------------------------------

int64_t SteadyNowMicrosForTest() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST(WatchdogTest, FlagsRiggedStragglerExactlyOnce) {
  obs::MetricsRegistry registry;
  obs::FlightRecorder flight(64);
  // Stage history: tasks take ~10 ms, so the 4x threshold sits near 40 ms.
  obs::Histogram* hist = registry.GetHistogram("distme.task.seconds");
  for (int i = 0; i < 8; ++i) hist->Observe(0.01);

  obs::Watchdog watchdog(&registry, &flight,
                         {.threshold_factor = 4.0, .min_task_us = 1000});
  const int token = watchdog.TaskStarted(/*task_id=*/7, /*node=*/2,
                                         /*slot=*/1);
  ASSERT_GE(token, 0);
  EXPECT_EQ(watchdog.active_tasks(), 1);

  // Pretend ten seconds passed: far beyond 4x the ~10 ms median.
  const int64_t later = SteadyNowMicrosForTest() + 10'000'000;
  EXPECT_EQ(watchdog.ScanNow(later), 1);
  EXPECT_EQ(watchdog.ScanNow(later), 0);  // flag-once per attempt
  EXPECT_EQ(watchdog.stragglers_flagged(), 1);
  EXPECT_EQ(
      registry.Snapshot().TotalValue("distme.watchdog.stragglers"), 1);

  // The straggler landed in the flight ring with its task id and node.
  bool found = false;
  for (const obs::FlightEvent& e : flight.Snapshot()) {
    if (e.type == obs::FlightEventType::kWatchdogStraggler) {
      EXPECT_EQ(e.a, 7);
      EXPECT_EQ(e.node, 2);
      EXPECT_EQ(e.slot, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  watchdog.TaskFinished(token);
  EXPECT_EQ(watchdog.active_tasks(), 0);
}

TEST(WatchdogTest, NoFlagsWithoutTaskHistory) {
  obs::MetricsRegistry registry;
  obs::Watchdog watchdog(&registry, nullptr, {.min_task_us = 0});
  const int token = watchdog.TaskStarted(1, 0, 0);
  ASSERT_GE(token, 0);
  // No completed task -> no median -> nothing to flag, however old the task.
  EXPECT_EQ(watchdog.ScanNow(SteadyNowMicrosForTest() + 60'000'000), 0);
  EXPECT_EQ(watchdog.stragglers_flagged(), 0);
  watchdog.TaskFinished(token);
}

TEST(WatchdogTest, FreshTasksAreNotFlagged) {
  obs::MetricsRegistry registry;
  registry.GetHistogram("distme.task.seconds")->Observe(0.01);
  obs::Watchdog watchdog(&registry, nullptr, {});
  const int token = watchdog.TaskStarted(3, 0, 0);
  ASSERT_GE(token, 0);
  EXPECT_EQ(watchdog.ScanOnce(), 0);  // just started: under min_task_us
  watchdog.TaskFinished(token);
}

// --- Session end-to-end -----------------------------------------------------

core::Session::Options TelemetrySessionOptions() {
  core::Session::Options options;
  options.cluster = ClusterConfig::Local(2, 2);
  options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  return options;
}

GeneratorOptions Gen(int64_t rows, int64_t cols, uint64_t seed) {
  GeneratorOptions g;
  g.rows = rows;
  g.cols = cols;
  g.block_size = 8;
  g.sparsity = 1.0;
  g.seed = seed;
  return g;
}

TEST(SessionTelemetryTest, LiveScrapeServesPrometheusTextDuringARun) {
  core::Session::Options options = TelemetrySessionOptions();
  options.http_port = 0;  // ephemeral
  options.sample_period_ms = 1;
  {
    core::Session session(options);
    ASSERT_GT(session.http_port(), 0);

    auto a = session.Generate(Gen(32, 24, 21));
    auto b = session.Generate(Gen(24, 16, 22));
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(session.Multiply(*a, *b).ok());

    const std::string metrics = HttpRequest(session.http_port(), "/metrics");
    EXPECT_NE(metrics.find("200"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
    EXPECT_NE(metrics.find("distme_task_seconds"), std::string::npos);

    const std::string flight = HttpRequest(session.http_port(), "/flight");
    EXPECT_NE(flight.find("application/json"), std::string::npos);
    EXPECT_NE(flight.find("\"task_start\""), std::string::npos);

    const std::string health = HttpRequest(session.http_port(), "/healthz");
    EXPECT_NE(health.find("ok"), std::string::npos);

    const std::string missing = HttpRequest(session.http_port(), "/missing");
    EXPECT_NE(missing.find("404"), std::string::npos);

    ASSERT_NE(session.sampler(), nullptr);
    session.sampler()->SampleOnce();
    EXPECT_GT(session.sampler()->total_samples(), 0);
  }
}

TEST(SessionTelemetryTest, ExplainRouteIs404UntilARunCompletes) {
  core::Session::Options options = TelemetrySessionOptions();
  options.http_port = 0;  // ephemeral
  core::Session session(options);
  ASSERT_GT(session.http_port(), 0);

  const std::string before = HttpRequest(session.http_port(), "/explain");
  EXPECT_NE(before.find("404"), std::string::npos);
  EXPECT_NE(before.find("no completed run yet"), std::string::npos);

  auto a = session.Generate(Gen(32, 24, 31));
  auto b = session.Generate(Gen(24, 16, 32));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(session.Multiply(*a, *b).ok());

  const std::string after = HttpRequest(session.http_port(), "/explain");
  EXPECT_NE(after.find("200"), std::string::npos);
  EXPECT_NE(after.find("application/json"), std::string::npos);
  EXPECT_NE(after.find("\"method\""), std::string::npos);
  EXPECT_NE(after.find("\"critical_path\""), std::string::npos);
}

TEST(SessionTelemetryTest, GpuRouteIs404UntilAGpuRunCompletes) {
  core::Session::Options options = TelemetrySessionOptions();
  options.http_port = 0;  // ephemeral
  options.mode = engine::ComputeMode::kGpuStreaming;
  core::Session session(options);
  ASSERT_GT(session.http_port(), 0);

  const std::string before = HttpRequest(session.http_port(), "/gpu");
  EXPECT_NE(before.find("404"), std::string::npos);
  EXPECT_NE(before.find("no run with GPU device events"), std::string::npos);

  auto a = session.Generate(Gen(32, 24, 41));
  auto b = session.Generate(Gen(24, 16, 42));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(session.Multiply(*a, *b).ok());

  const std::string after = HttpRequest(session.http_port(), "/gpu");
  EXPECT_NE(after.find("200"), std::string::npos);
  EXPECT_NE(after.find("application/json"), std::string::npos);
  EXPECT_NE(after.find("\"kernel_busy_us\""), std::string::npos);
  EXPECT_NE(after.find("\"overlap_ratio\""), std::string::npos);

  // The route serves the explain report's GPU section verbatim, so the two
  // surfaces cannot disagree.
  auto explain = session.ExplainLastRun();
  ASSERT_TRUE(explain.ok());
  ASSERT_TRUE(explain->has_gpu);
  EXPECT_NE(after.find(explain->gpu.ToJson()), std::string::npos);
}

TEST(SessionTelemetryTest, InjectedFailureDumpsFlightRecorder) {
  const std::string dump_path =
      testing::TempDir() + "/flight_failure_dump.json";
  std::remove(dump_path.c_str());

  core::Session::Options options = TelemetrySessionOptions();
  options.real.task_failure_rate = 1.0;  // every attempt crashes
  options.real.max_task_attempts = 2;
  options.flight_dump_path = dump_path;
  core::Session session(options);

  auto a = session.Generate(Gen(32, 24, 31));
  auto b = session.Generate(Gen(24, 16, 32));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(session.Multiply(*a, *b).ok());

  // The failed run dumped the ring: retries and the failed-run marker are in
  // the JSON post-mortem.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "expected flight dump at " << dump_path;
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"task_retry\""), std::string::npos);
  EXPECT_NE(contents.str().find("run failed"), std::string::npos);

  // The in-memory ring saw task starts and retries too.
  bool saw_retry = false;
  for (const obs::FlightEvent& e : session.flight().Snapshot()) {
    if (e.type == obs::FlightEventType::kTaskRetry) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(SessionTelemetryTest, WatchdogWiresThroughSessionOptions) {
  core::Session::Options options = TelemetrySessionOptions();
  options.watchdog_period_ms = 1;
  core::Session session(options);
  ASSERT_NE(session.watchdog(), nullptr);
  EXPECT_TRUE(session.watchdog()->running());

  auto a = session.Generate(Gen(32, 24, 41));
  auto b = session.Generate(Gen(24, 16, 42));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(session.Multiply(*a, *b).ok());
  // All tasks finished; tracking drained and (fast run) nothing was flagged.
  EXPECT_EQ(session.watchdog()->active_tasks(), 0);
}

}  // namespace
}  // namespace distme
