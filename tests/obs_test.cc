#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "engine/real_executor.h"
#include "engine/report.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distme::obs {
namespace {

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("distme.test.counter");
  Counter* b = registry.GetCounter("distme.test.counter");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3);

  // Different labels are different instruments; same labels (in any order)
  // are the same one.
  Counter* red = registry.GetCounter("distme.test.labeled",
                                     {{"color", "red"}, {"size", "s"}});
  Counter* blue = registry.GetCounter("distme.test.labeled",
                                      {{"color", "blue"}, {"size", "s"}});
  Counter* red_again = registry.GetCounter(
      "distme.test.labeled", {{"size", "s"}, {"color", "red"}});
  EXPECT_NE(red, blue);
  EXPECT_EQ(red, red_again);
}

TEST(MetricsRegistryTest, ConcurrentCountersAreExact) {
  constexpr int kThreads = 8;
  constexpr int kCounters = 4;
  constexpr int kIncrements = 20000;

  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIncrements; ++i) {
        // Every thread registers lazily, exercising FindOrCreate under
        // contention, then hammers the lock-free Add path.
        const std::string name =
            "distme.test.c" + std::to_string((t + i) % kCounters);
        registry.GetCounter(name)->Add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  int64_t total = 0;
  for (int c = 0; c < kCounters; ++c) {
    total += registry.GetCounter("distme.test.c" + std::to_string(c))->Value();
  }
  EXPECT_EQ(total, int64_t{kThreads} * kIncrements);
}

TEST(MetricsRegistryTest, GaugeSetMaxRecordsPeak) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("distme.test.peak");
  gauge->SetMax(10);
  gauge->SetMax(4);
  EXPECT_EQ(gauge->Value(), 10);
  gauge->SetMax(25);
  EXPECT_EQ(gauge->Value(), 25);
}

TEST(MetricsRegistryTest, SnapshotFindAndTotals) {
  MetricsRegistry registry;
  registry.GetCounter("distme.test.retries", {{"reason", "timeout"}})->Add(2);
  registry.GetCounter("distme.test.retries", {{"reason", "crash"}})->Add(5);
  registry.GetGauge("distme.test.gauge")->Set(-7);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricPoint* timeout =
      snapshot.Find("distme.test.retries", {{"reason", "timeout"}});
  ASSERT_NE(timeout, nullptr);
  EXPECT_EQ(timeout->value, 2);
  EXPECT_EQ(snapshot.TotalValue("distme.test.retries"), 7);
  const MetricPoint* gauge = snapshot.Find("distme.test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, MetricKind::kGauge);
  EXPECT_EQ(gauge->value, -7);
  EXPECT_EQ(snapshot.Find("distme.test.absent"), nullptr);

  registry.Reset();
  EXPECT_EQ(registry.Snapshot().TotalValue("distme.test.retries"), 0);
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, CountSumMinMaxAreExact) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("distme.test.h");
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    h->Observe(i * 0.5);
    sum += i * 0.5;
  }
  EXPECT_EQ(h->Count(), 1000);
  EXPECT_DOUBLE_EQ(h->Sum(), sum);
  EXPECT_DOUBLE_EQ(h->Min(), 0.5);
  EXPECT_DOUBLE_EQ(h->Max(), 500.0);
}

TEST(HistogramTest, PercentilesAreWithinABucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("distme.test.p");
  // Uniform 1..10000: p50 = 5000, p95 = 9500, p99 = 9900. The base-2
  // buckets bound the estimate within a factor of two of the true value.
  for (int i = 1; i <= 10000; ++i) h->Observe(i);
  const double p50 = h->Percentile(50);
  const double p95 = h->Percentile(95);
  const double p99 = h->Percentile(99);
  EXPECT_GE(p50, 2500.0);
  EXPECT_LE(p50, 10000.0);
  EXPECT_GE(p95, 4750.0);
  EXPECT_LE(p95, 10000.0);
  EXPECT_GE(p99, 4950.0);
  EXPECT_LE(p99, 10000.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Extremes are clamped to the exact observed min/max.
  EXPECT_DOUBLE_EQ(h->Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(100), 10000.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapse) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("distme.test.one");
  h->Observe(42.0);
  EXPECT_DOUBLE_EQ(h->Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h->Percentile(99), 42.0);
}

// --- Tracer / TraceSpan ----------------------------------------------------

TEST(TraceSpanTest, DisabledTracerRecordsNothing) {
  Tracer tracer;  // disabled by default
  {
    TraceSpan span(&tracer, "noop");
    span.AddArg("k", int64_t{1});
  }
  { TraceSpan null_span(nullptr, "noop"); }
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST(TraceSpanTest, CancelDiscardsTheSpan) {
  Tracer tracer;
  tracer.SetEnabled(true);
  {
    TraceSpan span(&tracer, "kept");
  }
  {
    TraceSpan span(&tracer, "discarded");
    span.Cancel();
  }
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kept");
}

TEST(TraceSpanTest, NestedSpansDrainEnclosingFirst) {
  Tracer tracer;
  tracer.SetEnabled(true);
  {
    TraceSpan outer(&tracer, "outer");
    // The children must start measurably after the parent: spans that open
    // in the same microsecond tie on (ts, dur) and drain in buffer order.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(2);
    while (std::chrono::steady_clock::now() < until) {
    }
    {
      TraceSpan inner(&tracer, "inner");
      TraceSpan innermost(&tracer, "innermost");
    }
  }
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 3u);
  // Drain() sorts by (ts asc, dur desc): parents precede their children.
  EXPECT_EQ(events[0].name, "outer");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[0].ts_us);
    EXPECT_LE(events[i].ts_us + events[i].dur_us,
              events[0].ts_us + events[0].dur_us);
  }
}

TEST(TraceSpanTest, ScopedTrackRoutesSpans) {
  Tracer tracer;
  tracer.SetEnabled(true);
  {
    Tracer::ScopedTrack track(2, 5);
    TraceSpan span(&tracer, "on-node2");
    EXPECT_EQ(Tracer::CurrentPid(), 2);
    EXPECT_EQ(Tracer::CurrentTid(), 5);
  }
  EXPECT_EQ(Tracer::CurrentPid(), 0);
  {
    TraceSpan span(&tracer, "on-node0");
  }
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "on-node2");
  EXPECT_EQ(events[0].pid, 2);
  EXPECT_EQ(events[0].tid, 5);
  EXPECT_EQ(events[1].pid, 0);
}

TEST(TracerTest, ManyThreadsLoseNoEvents) {
  constexpr int kThreads = 8;
  constexpr int kSpans = 2000;
  Tracer tracer;
  tracer.SetEnabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      Tracer::ScopedTrack track(0, t);
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span(&tracer, "w");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.Drain().size(), size_t{kThreads} * kSpans);
}

// --- Exporters -------------------------------------------------------------

TEST(ChromeTraceTest, EmitsRequiredKeysAndMetadata) {
  Tracer tracer;
  tracer.SetEnabled(true);
  tracer.SetProcessName(0, "node0");
  tracer.SetThreadName(0, 1, "slot1");
  {
    Tracer::ScopedTrack track(0, 1);
    TraceSpan span(&tracer, "task.attempt", "engine");
    span.AddArg("task", int64_t{7});
    span.AddArg("ratio", 0.5);
    span.AddArg("why", std::string("test \"quoted\" value"));
  }
  const std::string json = ChromeTraceJson(tracer, tracer.Drain());

  // Document structure plus the keys every trace viewer requires.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"task.attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  // Track-name metadata events.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("node0"), std::string::npos);
  EXPECT_NE(json.find("slot1"), std::string::npos);
  // Args, including escaped strings.
  EXPECT_NE(json.find("\"task\":7"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(MetricsJsonTest, RendersEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.GetCounter("distme.test.counter")->Add(11);
  registry.GetGauge("distme.test.gauge")->Set(3);
  registry.GetHistogram("distme.test.histogram")->Observe(2.0);
  const std::string json = MetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"name\":\"distme.test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":11"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// --- RealExecutor integration ---------------------------------------------

engine::DistributedMatrix MakeMatrix(int64_t rows, int64_t cols, int nodes,
                                     uint64_t seed) {
  GeneratorOptions g;
  g.rows = rows;
  g.cols = cols;
  g.block_size = 8;
  g.sparsity = 1.0;
  g.seed = seed;
  return engine::DistributedMatrix::FromGridHashed(GenerateUniform(g), nodes);
}

TEST(ObsIntegrationTest, RealRunSpansAndCountersMatchTheReport) {
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  engine::RealExecutor executor(cluster);
  engine::DistributedMatrix a = MakeMatrix(48, 40, 3, 11);
  engine::DistributedMatrix b = MakeMatrix(40, 32, 3, 12);

  MetricsRegistry metrics;
  Tracer tracer;
  tracer.SetEnabled(true);
  engine::RealOptions options;
  options.metrics = &metrics;
  options.tracer = &tracer;

  auto result = executor.Run(a, b, mm::CpmmMethod(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const engine::MMReport& report = result->report;
  ASSERT_TRUE(report.outcome.ok());

  // Every task attempt opened exactly one "task.attempt" span.
  std::vector<TraceEvent> events = tracer.Drain();
  int64_t attempt_spans = 0;
  for (const TraceEvent& e : events) attempt_spans += e.name == "task.attempt";
  EXPECT_EQ(attempt_spans, report.num_tasks + report.task_retries);
  EXPECT_EQ(attempt_spans,
            metrics.Snapshot().TotalValue("distme.task.attempts"));

  // The report's shuffle bytes are populated from the registry, and the
  // registry agrees with the report's total.
  const MetricsSnapshot snapshot = metrics.Snapshot();
  const int64_t counted =
      snapshot.TotalValue("distme.shuffle.repartition_bytes") +
      snapshot.TotalValue("distme.shuffle.aggregation_bytes");
  EXPECT_EQ(static_cast<double>(counted), report.total_shuffle_bytes());

  // Span tracks stay within the cluster: pids in [0, nodes] (nodes = driver).
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.pid, 0);
    EXPECT_LE(e.pid, cluster.num_nodes);
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
  }
}

TEST(ObsIntegrationTest, InjectedFaultsShowUpAsLabeledRetries) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  engine::RealExecutor executor(cluster);
  engine::DistributedMatrix a = MakeMatrix(32, 24, 2, 21);
  engine::DistributedMatrix b = MakeMatrix(24, 16, 2, 22);

  MetricsRegistry metrics;
  engine::RealOptions options;
  options.metrics = &metrics;
  options.task_failure_rate = 0.5;
  options.max_task_attempts = 100;  // retries always succeed eventually

  auto result = executor.Run(a, b, mm::BmmMethod(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->report.outcome.ok());
  ASSERT_GT(result->report.task_retries, 0);

  const MetricsSnapshot snapshot = metrics.Snapshot();
  const MetricPoint* injected = snapshot.Find(
      "distme.task.retries", {{"reason", "injected_crash"}});
  ASSERT_NE(injected, nullptr);
  EXPECT_EQ(injected->value, result->report.task_retries);

  // The structured run report carries the labeled breakdown.
  const std::string json = engine::RunReportJson(result->report, &snapshot);
  EXPECT_NE(json.find("\"task_retries_by_reason\""), std::string::npos);
  EXPECT_NE(json.find("\"injected_crash\""), std::string::npos);
}

}  // namespace
}  // namespace distme::obs
