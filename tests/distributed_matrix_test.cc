#include <gtest/gtest.h>

#include "engine/distributed_matrix.h"
#include "matrix/generator.h"

namespace distme::engine {
namespace {

BlockGrid TestGrid(double sparsity = 1.0) {
  GeneratorOptions g;
  g.rows = 43;
  g.cols = 37;
  g.block_size = 10;
  g.sparsity = sparsity;
  g.seed = 3;
  return GenerateUniform(g);
}

TEST(DistributedMatrixTest, FromGridCollectRoundTrip) {
  BlockGrid grid = TestGrid();
  DistributedMatrix dist = DistributedMatrix::FromGridHashed(grid, 4);
  EXPECT_EQ(dist.num_nodes(), 4);
  EXPECT_EQ(dist.num_blocks(), grid.num_blocks());
  EXPECT_TRUE(
      DenseMatrix::ApproxEquals(dist.Collect().ToDense(), grid.ToDense(), 0.0));
}

TEST(DistributedMatrixTest, GetReportsNetworkCrossing) {
  BlockGrid grid = TestGrid();
  DistributedMatrix dist = DistributedMatrix::FromGridHashed(grid, 3);
  const BlockIndex idx{1, 1};
  const int home = dist.NodeOf(idx);
  bool crossed = true;
  ASSERT_TRUE(dist.Get(idx, home, &crossed).ok());
  EXPECT_FALSE(crossed);
  ASSERT_TRUE(dist.Get(idx, (home + 1) % 3, &crossed).ok());
  EXPECT_TRUE(crossed);
}

TEST(DistributedMatrixTest, GetMissingIsZeroBlock) {
  DistributedMatrix dist(BlockedShape{25, 25, 10}, 2, Partitioner::Hash(2));
  auto blk = dist.Get({2, 2}, 0, nullptr);
  ASSERT_TRUE(blk.ok());
  EXPECT_EQ(blk->nnz(), 0);
  EXPECT_EQ(blk->rows(), 5);  // edge block
}

TEST(DistributedMatrixTest, OutOfRangeRejected) {
  DistributedMatrix dist(BlockedShape{20, 20, 10}, 2, Partitioner::Hash(2));
  EXPECT_FALSE(dist.Put({5, 0}, Block::Zero(10, 10)).ok());
  EXPECT_FALSE(dist.Get({-1, 0}, 0, nullptr).ok());
}

TEST(DistributedMatrixTest, RowPartitioningPlacesRowsTogether) {
  BlockGrid grid = TestGrid();
  DistributedMatrix dist =
      DistributedMatrix::FromGrid(grid, 3, Partitioner::Row(3));
  for (int64_t j = 0; j < dist.shape().block_cols(); ++j) {
    EXPECT_EQ(dist.NodeOf({2, j}), dist.NodeOf({2, 0}));
  }
}

TEST(DistributedMatrixTest, DescriptorMeasuresSparsity) {
  BlockGrid grid = TestGrid(0.25);
  DistributedMatrix dist = DistributedMatrix::FromGridHashed(grid, 2);
  mm::MatrixDescriptor d = dist.Descriptor();
  EXPECT_EQ(d.shape.rows, 43);
  EXPECT_NEAR(d.sparsity, 0.25, 0.05);
  EXPECT_FALSE(d.stored_dense);  // 0.25 < 0.4 threshold → CSR blocks
}

TEST(DistributedMatrixTest, SizeBytesMatchesCollectedGrid) {
  BlockGrid grid = TestGrid();
  DistributedMatrix dist = DistributedMatrix::FromGridHashed(grid, 5);
  EXPECT_EQ(dist.SizeBytes(), grid.SizeBytes());
}

}  // namespace
}  // namespace distme::engine
