#include <gtest/gtest.h>

#include "blas/local_mm.h"
#include "gpumm/streaming.h"
#include "matrix/generator.h"
#include "obs/flight_recorder.h"
#include "obs/gpu_timeline.h"

namespace distme::gpumm {
namespace {

struct Inputs {
  BlockGrid a;
  BlockGrid b;
};

Inputs MakeInputs(int64_t i_elems, int64_t k_elems, int64_t j_elems,
                 int64_t bs, double sparsity = 1.0) {
  GeneratorOptions ga;
  ga.rows = i_elems;
  ga.cols = k_elems;
  ga.block_size = bs;
  ga.sparsity = sparsity;
  ga.seed = 100;
  GeneratorOptions gb;
  gb.rows = k_elems;
  gb.cols = j_elems;
  gb.block_size = bs;
  gb.sparsity = 1.0;
  gb.seed = 101;
  return {GenerateUniform(ga), GenerateUniform(gb)};
}

// Assembles the streaming result into a dense matrix over the cuboid's C
// extent for comparison with the local reference.
DenseMatrix AssembleC(const GpuCuboidResult& result, const BlockedShape& c_shape,
                      int64_t bs) {
  DenseMatrix out(c_shape.rows, c_shape.cols);
  for (const auto& [key, block] : result.c_blocks) {
    const int64_t r0 = key.first * bs;
    const int64_t c0 = key.second * bs;
    for (int64_t r = 0; r < block.rows(); ++r) {
      for (int64_t c = 0; c < block.cols(); ++c) {
        out.Set(r0 + r, c0 + c, block.At(r, c));
      }
    }
  }
  return out;
}

TEST(StreamingTest, FullCuboidMatchesReference) {
  const int64_t bs = 8;
  Inputs s = MakeInputs(40, 48, 32, bs);
  GridBlockSource source(&s.a, &s.b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  const auto box = mm::VoxelSet::Box(0, 5, 0, 4, 0, 6);  // whole problem
  auto result = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source,
                               &device, 4 * kMiB);
  ASSERT_TRUE(result.ok());
  auto expected = blas::LocalMultiply(s.a, s.b);
  ASSERT_TRUE(expected.ok());
  DenseMatrix got = AssembleC(*result, expected->shape(), bs);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(got, expected->ToDense()), 1e-9);
}

TEST(StreamingTest, PartialCuboidProducesPartialProducts) {
  const int64_t bs = 8;
  Inputs s = MakeInputs(32, 64, 24, bs);
  GridBlockSource source(&s.a, &s.b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  // Two cuboids along k: (0..4) and (4..8); their sums must equal the
  // reference (the matrix aggregation step of Figure 4).
  auto r1 = RunCuboidOnGpu(mm::VoxelSet::Box(0, 4, 0, 3, 0, 4), s.a.shape(),
                           s.b.shape(), &source, &device, 4 * kMiB);
  auto r2 = RunCuboidOnGpu(mm::VoxelSet::Box(0, 4, 0, 3, 4, 8), s.a.shape(),
                           s.b.shape(), &source, &device, 4 * kMiB);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto expected = blas::LocalMultiply(s.a, s.b);
  ASSERT_TRUE(expected.ok());
  DenseMatrix sum = AssembleC(*r1, expected->shape(), bs);
  DenseMatrix part2 = AssembleC(*r2, expected->shape(), bs);
  for (int64_t i = 0; i < sum.num_elements(); ++i) {
    sum.mutable_data()[i] += part2.data()[i];
  }
  EXPECT_LT(DenseMatrix::MaxAbsDiff(sum, expected->ToDense()), 1e-9);
}

TEST(StreamingTest, TightGpuMemoryForcesMoreIterations) {
  const int64_t bs = 8;
  Inputs s = MakeInputs(32, 64, 32, bs);
  const auto box = mm::VoxelSet::Box(0, 4, 0, 4, 0, 8);

  GridBlockSource source1(&s.a, &s.b);
  gpu::Device roomy(GpuSpec{}, HardwareModel{});
  auto big = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source1, &roomy,
                            64 * kMiB);
  ASSERT_TRUE(big.ok());

  GridBlockSource source2(&s.a, &s.b);
  gpu::Device tight(GpuSpec{}, HardwareModel{});
  // Just enough for a few blocks: forces (P2,Q2,R2) with many subcuboids.
  auto small = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source2, &tight,
                              24 * 1024);
  ASSERT_TRUE(small.ok());
  EXPECT_GT(small->subcuboid.spec.num_cuboids(),
            big->subcuboid.spec.num_cuboids());
  // Same answer regardless of partitioning.
  auto expected = blas::LocalMultiply(s.a, s.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(AssembleC(*small, expected->shape(), bs),
                                    expected->ToDense()),
            1e-9);
}

TEST(StreamingTest, CBytesCrossPcieOnce) {
  // Eq. (6): C stays resident along the k-axis and crosses PCI-E once
  // (D2H), regardless of R2.
  const int64_t bs = 8;
  Inputs s = MakeInputs(16, 64, 16, bs);
  GridBlockSource source(&s.a, &s.b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  const auto box = mm::VoxelSet::Box(0, 2, 0, 2, 0, 8);
  auto result = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source,
                               &device, 16 * 1024);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->subcuboid.spec.R, 1);
  // D2H = exactly the C tiles, once each: 2×2 blocks of 8×8 doubles.
  EXPECT_EQ(result->stats.d2h_bytes, 4 * 8 * 8 * 8);
}

TEST(StreamingTest, RejectsNonBoxVoxelSets) {
  const int64_t bs = 8;
  Inputs s = MakeInputs(16, 16, 16, bs);
  GridBlockSource source(&s.a, &s.b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  const auto strided = mm::VoxelSet::Strided(2, 2, 2, 0, 3);
  auto result = RunCuboidOnGpu(strided, s.a.shape(), s.b.shape(), &source,
                               &device, 4 * kMiB);
  EXPECT_FALSE(result.ok());
}

TEST(StreamingTest, SparseInputsWork) {
  const int64_t bs = 10;
  Inputs s = MakeInputs(40, 50, 30, bs, /*sparsity=*/0.1);
  GridBlockSource source(&s.a, &s.b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  const auto box = mm::VoxelSet::Box(0, 4, 0, 3, 0, 5);
  auto result = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source,
                               &device, 4 * kMiB);
  ASSERT_TRUE(result.ok());
  auto expected = blas::LocalMultiply(s.a, s.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(AssembleC(*result, expected->shape(), bs),
                                    expected->ToDense()),
            1e-9);
}

// BlockSource that fails after serving `budget` blocks — exercises the
// error paths in the middle of the streaming loop.
class FailingBlockSource : public BlockSource {
 public:
  FailingBlockSource(const BlockGrid* a, const BlockGrid* b, int budget,
                     bool fail_a)
      : inner_(a, b), budget_(budget), fail_a_(fail_a) {}

  [[nodiscard]] Result<Block> GetA(int64_t i, int64_t k) override {
    if (fail_a_ && --budget_ < 0) {
      return Status::IOError("injected GetA failure");
    }
    return inner_.GetA(i, k);
  }
  [[nodiscard]] Result<Block> GetB(int64_t k, int64_t j) override {
    if (!fail_a_ && --budget_ < 0) {
      return Status::IOError("injected GetB failure");
    }
    return inner_.GetB(k, j);
  }

 private:
  GridBlockSource inner_;
  int budget_ = 0;
  bool fail_a_ = true;
};

// A failing source mid-stream must surface a clean Status, release every
// device allocation (no leak), and leave the flight ring with balanced
// begin/end interval events — AnalyzeGpuTimeline still produces a
// well-formed report from the truncated run.
TEST(StreamingTest, FailingSourcePropagatesAndLeaksNothing) {
  const int64_t bs = 8;
  Inputs s = MakeInputs(32, 48, 32, bs);
  const auto box = mm::VoxelSet::Box(0, 4, 0, 4, 0, 6);
  for (const bool fail_a : {true, false}) {
    for (const int budget : {0, 1, 3, 7}) {
      FailingBlockSource source(&s.a, &s.b, budget, fail_a);
      gpu::Device device(GpuSpec{}, HardwareModel{});
      obs::FlightRecorder flight(4096);
      device.AttachFlight(&flight, 0, 0);
      const int64_t memory_before = device.memory_used();
      auto result = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source,
                                   &device, 4 * kMiB, nullptr, &flight);
      ASSERT_FALSE(result.ok())
          << "fail_a=" << fail_a << " budget=" << budget;
      EXPECT_NE(result.status().ToString().find("injected"),
                std::string::npos)
          << result.status().ToString();
      // All device buffers released on the error path.
      EXPECT_EQ(device.memory_used(), memory_before)
          << "fail_a=" << fail_a << " budget=" << budget;
      // Every emitted begin has its end (pairs are emitted back to back).
      int begins = 0;
      int ends = 0;
      for (const obs::FlightEvent& e : flight.Snapshot()) {
        switch (e.type) {
          case obs::FlightEventType::kGpuH2dBegin:
          case obs::FlightEventType::kGpuD2hBegin:
          case obs::FlightEventType::kGpuKernelBegin:
            ++begins;
            break;
          case obs::FlightEventType::kGpuH2dEnd:
          case obs::FlightEventType::kGpuD2hEnd:
          case obs::FlightEventType::kGpuKernelEnd:
            ++ends;
            break;
          default:
            break;
        }
      }
      EXPECT_EQ(begins, ends);
      // The truncated timeline still tiles its window.
      const obs::GpuTimelineAnalysis analysis =
          obs::AnalyzeGpuTimeline(flight.Snapshot());
      for (const obs::GpuDeviceTimeline& dev : analysis.devices) {
        EXPECT_EQ(dev.report.kernel_bound_us + dev.report.h2d_bound_us +
                      dev.report.d2h_bound_us + dev.report.bubble_us,
                  dev.report.window_us());
      }
    }
  }
}

// The success path releases the A/B/C buffers too: memory returns to the
// pre-call level and the occupancy marks recorded the high water.
TEST(StreamingTest, SuccessReleasesAllDeviceBuffers) {
  const int64_t bs = 8;
  Inputs s = MakeInputs(16, 16, 16, bs);
  GridBlockSource source(&s.a, &s.b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  obs::FlightRecorder flight(4096);
  device.AttachFlight(&flight, 0, 0);
  const auto box = mm::VoxelSet::Box(0, 2, 0, 2, 0, 2);
  auto result = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source,
                               &device, 4 * kMiB);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(device.memory_used(), 0);
  const obs::GpuTimelineAnalysis analysis =
      obs::AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 1u);
  EXPECT_GT(analysis.devices[0].occupancy_high_water_bytes, 0);
  // One cuboid id tagged throughout.
  EXPECT_EQ(analysis.devices[0].cuboids.size(), 1u);
}

TEST(StreamingTest, DeviceTimeAdvances) {
  const int64_t bs = 8;
  Inputs s = MakeInputs(16, 16, 16, bs);
  GridBlockSource source(&s.a, &s.b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  const auto box = mm::VoxelSet::Box(0, 2, 0, 2, 0, 2);
  auto result = RunCuboidOnGpu(box, s.a.shape(), s.b.shape(), &source,
                               &device, 4 * kMiB);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->device_seconds, 0.0);
  EXPECT_EQ(result->stats.kernel_calls, 8);  // one per voxel
}

}  // namespace
}  // namespace distme::gpumm
