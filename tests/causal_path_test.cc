// Causal-graph + critical-path analysis: hand-crafted event streams with
// known answers, the blocked-time sum identity, the sim executor's synthetic
// timeline (path must tile the simulated wall exactly and land within 5% of
// the report's elapsed time), and the real-executor/Session integration.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/session.h"
#include "engine/sim_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "mm/optimizer.h"
#include "obs/causal_graph.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"

namespace distme::obs {
namespace {

using Type = FlightEventType;

// Asserts the per-task decomposition identity the analysis is built on:
// slot_wait + fetch_wait + gpu_wait + exec == finish - ready, for every task.
void ExpectComponentsSumToSpan(const CriticalPathAnalysis& analysis) {
  for (const TaskBlockedTime& t : analysis.tasks) {
    EXPECT_EQ(t.components_us(), t.span_us())
        << "task " << t.task_id << ": slot " << t.slot_wait_us << " + fetch "
        << t.fetch_wait_us << " + gpu " << t.gpu_wait_us << " + exec "
        << t.exec_us << " != span " << t.span_us();
  }
}

// Asserts the walk invariant: hops tile [run_start, run_finish] with no gap
// or overlap, so the path length equals the wall time exactly.
void ExpectHopsTileWall(const CriticalPathAnalysis& analysis,
                        int64_t run_start_us, int64_t run_finish_us) {
  ASSERT_FALSE(analysis.hops.empty());
  EXPECT_EQ(analysis.hops.front().begin_us, run_start_us);
  EXPECT_EQ(analysis.hops.back().end_us, run_finish_us);
  for (size_t i = 1; i < analysis.hops.size(); ++i) {
    EXPECT_EQ(analysis.hops[i].begin_us, analysis.hops[i - 1].end_us)
        << "gap/overlap between hop " << i - 1 << " ("
        << analysis.hops[i - 1].label << ") and hop " << i << " ("
        << analysis.hops[i].label << ")";
  }
  EXPECT_EQ(analysis.path_us, analysis.wall_us);
}

TEST(CausalGraphTest, EmptyAndTruncatedSnapshots) {
  EXPECT_EQ(BuildCausalGraph({}).wall_us(), 0);

  // A run_finish with no run_start before it (ring wrapped past the start)
  // must not produce a phantom run.
  FlightRecorder flight(64);
  flight.RecordAt(900, Type::kRunFinish, -1, -1, 4, 0, "sim");
  EXPECT_EQ(BuildCausalGraph(flight.Snapshot()).wall_us(), 0);

  // A run_start with no finish (crash mid-run) likewise.
  flight.RecordAt(1000, Type::kRunStart, -1, -1, 4, 0, "sim");
  const CausalGraph graph = BuildCausalGraph(flight.Snapshot());
  EXPECT_EQ(graph.wall_us(), 0);
}

TEST(CausalGraphTest, ParsesTasksStagesAndEdges) {
  FlightRecorder flight(128);
  flight.RecordAt(0, Type::kRunStart, -1, -1, 2, 0, "real");
  flight.RecordAt(0, Type::kStageBegin, -1, -1, 0, 0, "multiply");
  flight.RecordAt(10, Type::kTaskStart, 0, 0, /*task=*/7, 0, "t");
  flight.RecordEdgeAt(50, FlightEdgeKind::kFetchWait, 0, 0, 7, 40);
  flight.RecordEdgeAt(90, FlightEdgeKind::kGpuWait, 0, 0, 7, 30);
  flight.RecordAt(100, Type::kTaskFinish, 0, 0, 7, 90, "t");
  flight.RecordAt(120, Type::kStageEnd, -1, -1, 0, 0, "multiply");
  flight.RecordAt(150, Type::kRunFinish, -1, -1, 2, 0, "real");

  const CausalGraph graph = BuildCausalGraph(flight.Snapshot());
  EXPECT_EQ(graph.wall_us(), 150);
  EXPECT_TRUE(graph.run_ok);
  EXPECT_EQ(graph.planned_tasks, 2);
  ASSERT_EQ(graph.tasks.size(), 1u);
  EXPECT_EQ(graph.tasks[0].task_id, 7);
  EXPECT_EQ(graph.tasks[0].start_us, 10);
  EXPECT_EQ(graph.tasks[0].finish_us, 100);
  EXPECT_EQ(graph.tasks[0].fetch_wait_us, 40);
  EXPECT_EQ(graph.tasks[0].gpu_wait_us, 30);
  ASSERT_EQ(graph.stages.size(), 1u);
  EXPECT_EQ(graph.stages[0].name, "multiply");
  EXPECT_EQ(graph.stages[0].span_us(), 120);
}

TEST(CausalGraphTest, FailedRunAndRetryAttempts) {
  FlightRecorder flight(128);
  flight.RecordAt(0, Type::kRunStart, -1, -1, 1, 0, "real");
  flight.RecordAt(5, Type::kTaskStart, 0, 0, 3, 0, "t");
  // The retry's fresh start resets the first attempt's accumulators.
  flight.RecordEdgeAt(8, FlightEdgeKind::kFetchWait, 0, 0, 3, 3);
  flight.RecordAt(20, Type::kTaskStart, 0, 1, 3, 1, "t");
  flight.RecordAt(30, Type::kTaskFinish, 0, 1, 3, 10, "t");
  flight.RecordAt(40, Type::kRunFinish, -1, -1, 1, /*failed=*/1, "real");

  const CausalGraph graph = BuildCausalGraph(flight.Snapshot());
  EXPECT_FALSE(graph.run_ok);
  ASSERT_EQ(graph.tasks.size(), 1u);
  EXPECT_EQ(graph.tasks[0].attempts, 2);
  EXPECT_EQ(graph.tasks[0].start_us, 20);
  EXPECT_EQ(graph.tasks[0].fetch_wait_us, 0);
}

TEST(CausalGraphTest, AnalyzesLastCompleteRunOnly) {
  FlightRecorder flight(128);
  flight.RecordAt(0, Type::kRunStart, -1, -1, 9, 0, "real");
  flight.RecordAt(100, Type::kRunFinish, -1, -1, 9, 0, "real");
  flight.RecordAt(200, Type::kRunStart, -1, -1, 1, 0, "real");
  flight.RecordAt(210, Type::kTaskStart, 0, 0, 0, 0, "t");
  flight.RecordAt(260, Type::kTaskFinish, 0, 0, 0, 50, "t");
  flight.RecordAt(300, Type::kRunFinish, -1, -1, 1, 0, "real");

  const CausalGraph graph = BuildCausalGraph(flight.Snapshot());
  EXPECT_EQ(graph.run_start_us, 200);
  EXPECT_EQ(graph.run_finish_us, 300);
  EXPECT_EQ(graph.planned_tasks, 1);
  ASSERT_EQ(graph.tasks.size(), 1u);
}

TEST(FlightEdgeKindTest, NameRoundTrip) {
  for (int i = 0; i < static_cast<int>(FlightEdgeKind::kNumKinds); ++i) {
    const FlightEdgeKind kind = static_cast<FlightEdgeKind>(i);
    EXPECT_EQ(FlightEdgeKindFromName(FlightEdgeKindName(kind)), kind);
  }
  EXPECT_EQ(FlightEdgeKindFromName("no_such_kind"),
            FlightEdgeKind::kNumKinds);
  EXPECT_EQ(FlightEdgeKindFromName(nullptr), FlightEdgeKind::kNumKinds);
}

TEST(FlightDumpTest, HeaderCarriesWallClockAnchor) {
  FlightRecorder flight(64);
  flight.Record(Type::kRunStart, -1, -1, 0, 0, "real");
  const std::string json = flight.ToJson();
  EXPECT_NE(json.find("\"schema\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_epoch_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"steady_epoch_us\":"), std::string::npos);
  EXPECT_GT(flight.WallEpochMicros(), 0);
}

TEST(CriticalPathTest, HandCraftedChainHasKnownPath) {
  // Two tasks serialized on slot (0,0): task 0 runs [10,100] with 40 µs of
  // fetch wait, task 1 waits for the slot and runs [100,180]. 20 µs of
  // overhead tail to run_finish at 200.
  FlightRecorder flight(128);
  flight.RecordAt(0, Type::kRunStart, -1, -1, 2, 0, "real");
  flight.RecordAt(10, Type::kTaskStart, 0, 0, 0, 0, "t");
  flight.RecordEdgeAt(50, FlightEdgeKind::kFetchWait, 0, 0, 0, 40);
  flight.RecordAt(100, Type::kTaskFinish, 0, 0, 0, 90, "t");
  flight.RecordAt(100, Type::kTaskStart, 0, 0, 1, 0, "t");
  flight.RecordAt(180, Type::kTaskFinish, 0, 0, 1, 80, "t");
  flight.RecordAt(200, Type::kRunFinish, -1, -1, 2, 0, "real");

  const CausalGraph graph = BuildCausalGraph(flight.Snapshot());
  const CriticalPathAnalysis analysis = AnalyzeCriticalPath(graph);
  EXPECT_EQ(analysis.wall_us, 200);
  ExpectHopsTileWall(analysis, 0, 200);
  ExpectComponentsSumToSpan(analysis);

  // Expected tiling: task 0 slot_wait [0,10] (ready at run start), fetch
  // [10,50], exec [50,100]; task 1 exec [100,180] (chained, no wait);
  // overhead [180,200].
  EXPECT_EQ(analysis.attribution_us.at("scheduling"), 10);
  EXPECT_EQ(analysis.attribution_us.at("shuffle"), 40);
  EXPECT_EQ(analysis.attribution_us.at("compute"), 50 + 80);
  EXPECT_EQ(analysis.attribution_us.at("overhead"), 20);
  EXPECT_EQ(analysis.bottleneck(), "compute");
  EXPECT_NEAR(analysis.bottleneck_fraction(), 130.0 / 200.0, 1e-12);

  // Fleet-wide blocked-time aggregates cover both tasks.
  EXPECT_EQ(analysis.aggregate_us.at("fetch_wait"), 40);
  EXPECT_EQ(analysis.aggregate_us.at("exec"), 50 + 80);
}

TEST(CriticalPathTest, StageBarriersExplainTaskFreeIntervals) {
  // A sim-shaped run: repartition stage, multiply stage with one task, an
  // aggregation stage, and run bounds beyond the last stage.
  FlightRecorder flight(128);
  flight.RecordAt(0, Type::kRunStart, -1, -1, 1, 0, "sim");
  flight.RecordAt(5, Type::kStageBegin, -1, -1, 0, 0, "repartition");
  flight.RecordAt(100, Type::kStageEnd, -1, -1, 0, 0, "repartition");
  flight.RecordAt(100, Type::kStageBegin, -1, -1, 0, 0, "multiply");
  flight.RecordAt(100, Type::kTaskStart, 0, 0, 0, 0, "sim");
  flight.RecordAt(160, Type::kTaskFinish, 0, 0, 0, 60, "sim");
  flight.RecordAt(180, Type::kStageEnd, -1, -1, 0, 0, "multiply");
  flight.RecordAt(180, Type::kStageBegin, -1, -1, 0, 0, "aggregation");
  flight.RecordAt(230, Type::kStageEnd, -1, -1, 0, 0, "aggregation");
  flight.RecordAt(230, Type::kRunFinish, -1, -1, 1, 0, "sim");

  const CriticalPathAnalysis analysis =
      AnalyzeCriticalPath(BuildCausalGraph(flight.Snapshot()));
  ExpectHopsTileWall(analysis, 0, 230);
  ExpectComponentsSumToSpan(analysis);
  // Aggregation [180,230] and repartition [5,100] are shuffle barriers; the
  // multiply sync slack [160,180] is compute; [0,5] is overhead.
  EXPECT_EQ(analysis.attribution_us.at("shuffle"), 95 + 50);
  EXPECT_EQ(analysis.attribution_us.at("compute"), 60 + 20);
  EXPECT_EQ(analysis.attribution_us.at("overhead"), 5);
  EXPECT_EQ(analysis.stage_us.at("repartition"), 95);
  EXPECT_EQ(analysis.stage_us.at("multiply"), 80);
  EXPECT_EQ(analysis.stage_us.at("aggregation"), 50);
}

TEST(CriticalPathTest, SimTimelinePathMatchesReportedWall) {
  // The acceptance gate: a simulated run's critical-path length must land
  // within 5% of the run's measured (simulated) wall time. By construction
  // the path tiles the flight wall exactly, so the 5% bound absorbs only
  // µs rounding between the report's seconds and the emitted timeline.
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(70000, 70000, 70000,
                                                     1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  auto opt = mm::OptimizeCuboid(p, cluster);
  ASSERT_TRUE(opt.ok());
  mm::CuboidMethod method(opt->spec);

  FlightRecorder flight(4096);
  engine::SimOptions options;
  options.mode = engine::ComputeMode::kGpuStreaming;
  options.flight = &flight;
  options.flight_task_events = true;
  auto report = executor.Run(p, method, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->outcome.ok());

  const CausalGraph graph = BuildCausalGraph(flight.Snapshot());
  ASSERT_GT(graph.wall_us(), 0);
  EXPECT_GT(graph.tasks.size(), 0u) << "ring too small for task events?";
  const CriticalPathAnalysis analysis = AnalyzeCriticalPath(graph);
  ExpectHopsTileWall(analysis, graph.run_start_us, graph.run_finish_us);
  ExpectComponentsSumToSpan(analysis);

  const double path_s = static_cast<double>(analysis.path_us) * 1e-6;
  EXPECT_NEAR(path_s, report->elapsed_seconds,
              0.05 * report->elapsed_seconds)
      << "path " << path_s << "s vs wall " << report->elapsed_seconds << "s";
  // A simulated CuboidMM run is dominated by recorded causes, not overhead.
  EXPECT_NE(analysis.bottleneck(), "");
  EXPECT_GT(analysis.bottleneck_fraction(), 0.2);
}

TEST(CriticalPathTest, SessionExplainCarriesCriticalPath) {
  core::Session::Options options;
  options.cluster = ClusterConfig::Local(4);
  core::Session session(options);

  GeneratorOptions gen;
  gen.rows = 256;
  gen.cols = 256;
  gen.block_size = 64;
  gen.sparsity = 1.0;
  gen.seed = 7;
  auto a = session.Generate(gen);
  ASSERT_TRUE(a.ok());
  auto b = session.Generate(gen);
  ASSERT_TRUE(b.ok());
  auto c = session.Multiply(*a, *b);
  ASSERT_TRUE(c.ok());

  auto explain = session.ExplainLastRun();
  ASSERT_TRUE(explain.ok());
  ASSERT_TRUE(explain->has_critical_path);
  const CriticalPathAnalysis& analysis = explain->critical_path;
  EXPECT_GT(analysis.path_us, 0);
  EXPECT_EQ(analysis.path_us, analysis.wall_us);
  EXPECT_TRUE(analysis.run_ok);
  EXPECT_GT(analysis.tasks.size(), 0u);
  ExpectComponentsSumToSpan(analysis);
  // The real executor's wall time includes planning/partitioning around the
  // flight-bracketed run, so consistency is <= 1 but must stay meaningful.
  const double path_s = static_cast<double>(analysis.path_us) * 1e-6;
  EXPECT_LE(path_s, explain->elapsed_seconds * 1.05);

  // Both renderings surface the analysis.
  EXPECT_NE(explain->ToTable().find("critical path:"), std::string::npos);
  EXPECT_NE(explain->ToJson().find("\"critical_path\""), std::string::npos);
}

TEST(CriticalPathTest, AnalysisJsonFileIsWritten) {
  const std::string path =
      ::testing::TempDir() + "/distme_analysis_test.json";
  std::remove(path.c_str());
  {
    core::Session::Options options;
    options.cluster = ClusterConfig::Local(2);
    options.analysis_json_path = path;
    core::Session session(options);
    GeneratorOptions gen;
    gen.rows = 128;
    gen.cols = 128;
    gen.block_size = 64;
    gen.seed = 3;
    auto a = session.Generate(gen);
    ASSERT_TRUE(a.ok());
    auto c = session.Multiply(*a, *a);
    ASSERT_TRUE(c.ok());
  }
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "analysis JSON not written to " << path;
  char buf[256] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(n, 0u);
  EXPECT_NE(std::strstr(buf, "\"method\""), nullptr);
}

}  // namespace
}  // namespace distme::obs
