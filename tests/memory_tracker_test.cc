#include <gtest/gtest.h>

#include "cluster/memory_tracker.h"

namespace distme {
namespace {

TEST(MemoryTrackerTest, AllocateAndFree) {
  MemoryTracker tracker("t", 1000);
  EXPECT_TRUE(tracker.Allocate(400).ok());
  EXPECT_EQ(tracker.used(), 400);
  EXPECT_EQ(tracker.remaining(), 600);
  EXPECT_TRUE(tracker.Allocate(600).ok());
  EXPECT_EQ(tracker.remaining(), 0);
  tracker.Free(500);
  EXPECT_EQ(tracker.used(), 500);
  EXPECT_TRUE(tracker.Allocate(500).ok());
}

TEST(MemoryTrackerTest, RejectsOverBudget) {
  MemoryTracker tracker("t", 100);
  EXPECT_TRUE(tracker.Allocate(100).ok());
  Status st = tracker.Allocate(1);
  EXPECT_TRUE(st.IsOutOfMemory());
  // Failed allocation does not count.
  EXPECT_EQ(tracker.used(), 100);
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker tracker("t", 1000);
  ASSERT_TRUE(tracker.Allocate(700).ok());
  tracker.Free(600);
  ASSERT_TRUE(tracker.Allocate(200).ok());
  EXPECT_EQ(tracker.peak(), 700);
  EXPECT_EQ(tracker.used(), 300);
}

TEST(MemoryTrackerTest, FreeClampsAtZero) {
  MemoryTracker tracker("t", 100);
  ASSERT_TRUE(tracker.Allocate(50).ok());
  tracker.Free(80);  // over-free is clamped
  EXPECT_EQ(tracker.used(), 0);
}

TEST(MemoryTrackerTest, ErrorMessageNamesTheTask) {
  MemoryTracker tracker("task 7", 10);
  Status st = tracker.Allocate(20);
  ASSERT_TRUE(st.IsOutOfMemory());
  EXPECT_NE(st.message().find("task 7"), std::string::npos);
}

}  // namespace
}  // namespace distme
