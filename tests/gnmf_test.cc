#include <gtest/gtest.h>

#include "core/gnmf.h"
#include "systems/profiles.h"

namespace distme::core {
namespace {

Session::Options TestOptions() {
  Session::Options options;
  options.cluster = ClusterConfig::Local(2, 2);
  options.planner = std::make_shared<DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  return options;
}

TEST(GnmfTest, LossDecreasesOnRealData) {
  Session session(TestOptions());
  // A small synthetic rating matrix.
  GeneratorOptions g;
  g.rows = 48;
  g.cols = 32;
  g.block_size = 8;
  g.sparsity = 0.2;
  g.seed = 42;
  auto v = session.Generate(g);
  ASSERT_TRUE(v.ok());

  GnmfOptions options;
  options.factor_dim = 8;
  options.iterations = 5;
  options.track_loss = true;
  auto result = RunGnmf(&session, *v, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->loss.size(), 5u);
  // The multiplicative updates are monotone for GNMF.
  for (size_t i = 1; i < result->loss.size(); ++i) {
    EXPECT_LE(result->loss[i], result->loss[i - 1] * 1.0001)
        << "iteration " << i;
  }
  EXPECT_LT(result->loss.back(), result->loss.front());
  // Factor shapes.
  EXPECT_EQ(result->w.rows(), 48);
  EXPECT_EQ(result->w.cols(), 8);
  EXPECT_EQ(result->h.rows(), 8);
  EXPECT_EQ(result->h.cols(), 32);
}

TEST(GnmfTest, FactorsStayNonNegative) {
  Session session(TestOptions());
  GeneratorOptions g;
  g.rows = 24;
  g.cols = 24;
  g.block_size = 8;
  g.sparsity = 0.3;
  g.seed = 17;
  auto v = session.Generate(g);
  ASSERT_TRUE(v.ok());
  GnmfOptions options;
  options.factor_dim = 4;
  options.iterations = 3;
  auto result = RunGnmf(&session, *v, options);
  ASSERT_TRUE(result.ok());
  const DenseMatrix w = result->w.Collect().ToDense();
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    EXPECT_GE(w.data()[i], 0.0);
  }
}

TEST(GnmfTest, InvalidFactorDimRejected) {
  Session session(TestOptions());
  GeneratorOptions g;
  g.rows = 8;
  g.cols = 8;
  g.block_size = 8;
  auto v = session.Generate(g);
  GnmfOptions options;
  options.factor_dim = 0;
  EXPECT_FALSE(RunGnmf(&session, *v, options).ok());
}

core::GnmfSimOptions NetflixSim(int64_t factor_dim = 200) {
  core::GnmfSimOptions options;
  const RatingDataset d = Netflix();
  options.v = mm::MatrixDescriptor::Sparse(
      d.users, d.items, 1000,
      static_cast<double>(d.ratings) /
          (static_cast<double>(d.users) * d.items));
  options.factor_dim = factor_dim;
  options.iterations = 10;
  return options;
}

TEST(GnmfSimTest, TenIterationsAccumulateLinearly) {
  auto distme = systems::DistME(/*gpu=*/true);
  auto report = systems::RunGnmfSim(distme, NetflixSim());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->outcome.ok()) << report->outcome;
  ASSERT_EQ(report->iteration_seconds.size(), 10u);
  EXPECT_NEAR(report->AccumulatedSeconds(10), report->total_seconds, 1e-9);
  EXPECT_GT(report->AccumulatedSeconds(5), 0.0);
  EXPECT_LT(report->AccumulatedSeconds(5), report->total_seconds);
}

TEST(GnmfSimTest, DistmeGpuFastestOnNetflix) {
  // Figure 8(b): DistME(G) outperforms the other systems on Netflix.
  const auto options = NetflixSim();
  auto distme_g = systems::RunGnmfSim(systems::DistME(true), options);
  auto distme_c = systems::RunGnmfSim(systems::DistME(false), options);
  auto systemml_g = systems::RunGnmfSim(systems::SystemML(true), options);
  auto matfast_g = systems::RunGnmfSim(systems::MatFast(true), options);
  ASSERT_TRUE(distme_g.ok() && distme_c.ok() && systemml_g.ok() &&
              matfast_g.ok());
  ASSERT_TRUE(distme_g->outcome.ok()) << distme_g->outcome;
  if (systemml_g->outcome.ok()) {
    EXPECT_LT(distme_g->total_seconds, systemml_g->total_seconds);
  }
  if (matfast_g->outcome.ok()) {
    EXPECT_LT(distme_g->total_seconds, matfast_g->total_seconds);
  }
  EXPECT_LT(distme_g->total_seconds, distme_c->total_seconds);
}

TEST(GnmfSimTest, LargerFactorDimensionCostsMore) {
  auto small = systems::RunGnmfSim(systems::DistME(true), NetflixSim(200));
  auto large = systems::RunGnmfSim(systems::DistME(true), NetflixSim(1000));
  ASSERT_TRUE(small.ok() && large.ok());
  ASSERT_TRUE(small->outcome.ok() && large->outcome.ok());
  EXPECT_GT(large->total_seconds, small->total_seconds);
}

TEST(GnmfSimTest, MatFastOomAtLargeFactorDimension) {
  // Figure 8(d): MatFast fails with O.O.M. on YahooMusic when the factor
  // dimension reaches 1000.
  core::GnmfSimOptions options;
  const RatingDataset d = YahooMusic();
  options.v = mm::MatrixDescriptor::Sparse(
      d.users, d.items, 1000,
      static_cast<double>(d.ratings) /
          (static_cast<double>(d.users) * d.items));
  options.factor_dim = 1000;
  options.iterations = 10;
  auto matfast = systems::RunGnmfSim(systems::MatFast(true), options);
  ASSERT_TRUE(matfast.ok());
  EXPECT_TRUE(matfast->outcome.IsOutOfMemory()) << matfast->outcome;
  // DistME completes at the same factor dimension.
  auto distme = systems::RunGnmfSim(systems::DistME(true), options);
  ASSERT_TRUE(distme.ok());
  EXPECT_TRUE(distme->outcome.ok()) << distme->outcome;
}

TEST(GnmfSimTest, DependencyAwareShufflesLess) {
  auto aware = systems::DistME(false);
  auto naive = aware;
  naive.dependency_aware = false;
  naive.name = "DistME-naive";
  auto a = systems::RunGnmfSim(aware, NetflixSim());
  auto b = systems::RunGnmfSim(naive, NetflixSim());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->outcome.ok() && b->outcome.ok());
  EXPECT_LT(a->total_shuffle_bytes, b->total_shuffle_bytes);
}

}  // namespace
}  // namespace distme::core

namespace distme::core {
namespace {

TEST(GnmfExprTest, MatchesEagerGnmf) {
  Session eager = Session([] {
    Session::Options o;
    o.cluster = ClusterConfig::Local(2, 2);
    o.planner = std::make_shared<DistmePlanner>(
        mm::OptimizerOptions{.enforce_parallelism = false});
    return o;
  }());
  Session lazy = Session([] {
    Session::Options o;
    o.cluster = ClusterConfig::Local(2, 2);
    o.planner = std::make_shared<DistmePlanner>(
        mm::OptimizerOptions{.enforce_parallelism = false});
    return o;
  }());

  GeneratorOptions g;
  g.rows = 32;
  g.cols = 24;
  g.block_size = 8;
  g.sparsity = 0.3;
  g.seed = 99;
  auto v1 = eager.Generate(g);
  auto v2 = lazy.Generate(g);
  ASSERT_TRUE(v1.ok() && v2.ok());

  GnmfOptions options;
  options.factor_dim = 8;
  options.iterations = 3;
  auto a = RunGnmf(&eager, *v1, options);
  GnmfEvalStats stats;
  auto b = RunGnmfExpr(&lazy, *v2, options, &stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(a->w.Collect().ToDense(),
                                    b->w.Collect().ToDense()),
            1e-9);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(a->h.Collect().ToDense(),
                                    b->h.Collect().ToDense()),
            1e-9);
  // Per iteration: 6 multiplications, and the two transposes are each
  // reused once by the shared subtrees.
  EXPECT_EQ(stats.multiplications, 6 * options.iterations);
  EXPECT_GE(stats.nodes_reused, 2 * options.iterations);
}

}  // namespace
}  // namespace distme::core
