// End-to-end integration: the distributed engine against the single-node
// reference across methods, planners, sparsities, shapes and compute modes;
// plus cross-validation between the simulated executor's communication
// accounting and the real executor's measured bytes.

#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.h"
#include "blas/local_mm.h"
#include "core/gnmf.h"
#include "core/session.h"
#include "engine/real_executor.h"
#include "engine/sim_executor.h"
#include "matrix/io.h"
#include "mm/methods.h"
#include "systems/profiles.h"

namespace distme {
namespace {

TEST(IntegrationTest, SimAndRealAgreeOnCommunicationRatios) {
  // On the same problem, the ratio of RMM-to-CuboidMM shuffle volume should
  // roughly agree between the analytic simulation and measured execution.
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);

  GeneratorOptions ga;
  ga.rows = 48;
  ga.cols = 48;
  ga.block_size = 8;
  ga.sparsity = 1.0;
  ga.seed = 11;
  GeneratorOptions gb = ga;
  gb.seed = 12;
  BlockGrid grid_a = GenerateUniform(ga);
  BlockGrid grid_b = GenerateUniform(gb);
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(grid_a, 3);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(grid_b, 3);

  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
  mm::RmmMethod rmm;
  mm::CuboidMethod cuboid(mm::CuboidSpec{2, 3, 2});

  engine::RealExecutor real(cluster);
  auto real_rmm = real.Run(a, b, rmm, {});
  auto real_cuboid = real.Run(a, b, cuboid, {});
  ASSERT_TRUE(real_rmm.ok() && real_cuboid.ok());

  engine::SimExecutor sim(cluster);
  auto sim_rmm = sim.Run(problem, rmm, {});
  auto sim_cuboid = sim.Run(problem, cuboid, {});
  ASSERT_TRUE(sim_rmm.ok() && sim_cuboid.ok());

  const double real_ratio = real_rmm->report.total_shuffle_bytes() /
                            real_cuboid->report.total_shuffle_bytes();
  const double sim_ratio =
      sim_rmm->total_shuffle_bytes() / sim_cuboid->total_shuffle_bytes();
  EXPECT_GT(real_ratio, 1.0);
  EXPECT_GT(sim_ratio, 1.0);
  // Within 2× of each other (the real run only counts cross-node moves on a
  // 3-node cluster; the model charges every move).
  EXPECT_LT(std::abs(std::log(real_ratio / sim_ratio)), std::log(2.5));
}

TEST(IntegrationTest, FullPipelineLoadMultiplySave) {
  // MatrixMarket in → distribute → multiply (planner) → collect → save →
  // reload → verify.
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  core::Session::Options options;
  options.cluster = cluster;
  options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  core::Session session(options);

  GeneratorOptions g;
  g.rows = 40;
  g.cols = 30;
  g.block_size = 10;
  g.sparsity = 0.25;
  g.seed = 21;
  BlockGrid grid = GenerateUniform(g);
  const std::string path = testing::TempDir() + "/pipeline.mtx";
  ASSERT_TRUE(WriteMatrixMarket(grid, path).ok());
  auto loaded = ReadMatrixMarket(path, 10);
  ASSERT_TRUE(loaded.ok());

  auto v = session.FromGrid(*loaded);
  auto vt = session.Transpose(*v);
  auto gram = session.Multiply(*vt, *v);  // VᵀV, 30×30
  ASSERT_TRUE(gram.ok());

  DenseMatrix dv = grid.ToDense();
  DenseMatrix expected = blas::Multiply(dv.Transpose(), dv);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(gram->Collect().ToDense(), expected),
            1e-9);
  std::remove(path.c_str());
}

TEST(IntegrationTest, AllSystemPlannersProduceCorrectProducts) {
  // Each comparator system's *planner* drives the real executor; whatever
  // method it picks, the product must be right.
  const ClusterConfig cluster = ClusterConfig::Local(2, 3);
  GeneratorOptions ga;
  ga.rows = 32;
  ga.cols = 40;
  ga.block_size = 8;
  ga.sparsity = 1.0;
  ga.seed = 31;
  GeneratorOptions gb;
  gb.rows = 40;
  gb.cols = 24;
  gb.block_size = 8;
  gb.sparsity = 1.0;
  gb.seed = 32;
  BlockGrid grid_a = GenerateUniform(ga);
  BlockGrid grid_b = GenerateUniform(gb);
  auto expected = blas::LocalMultiply(grid_a, grid_b);
  ASSERT_TRUE(expected.ok());

  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(grid_a, 2);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(grid_b, 2);
  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};

  // Relax the parallelism constraint so the cuboid optimizer is feasible at
  // toy scale.
  auto distme_planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  std::vector<std::shared_ptr<core::Planner>> planners = {
      distme_planner,
      systems::SystemML(false).planner,
      systems::MatFast(false).planner,
      systems::ScaLAPACK().planner,
  };
  engine::RealExecutor executor(cluster);
  for (const auto& planner : planners) {
    auto method = planner->Choose(problem, cluster);
    ASSERT_TRUE(method.ok()) << planner->name();
    auto run = executor.Run(a, b, **method, {});
    ASSERT_TRUE(run.ok()) << planner->name();
    ASSERT_TRUE(run->report.outcome.ok())
        << planner->name() << ": " << run->report.outcome;
    EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                      expected->ToDense()),
              1e-9)
        << planner->name() << " chose " << run->report.method_name;
  }
}

TEST(IntegrationTest, GnmfReconstructsLowRankMatrix) {
  // V = W0 × H0 exactly rank-4 and non-negative: GNMF should drive the
  // reconstruction error well below the initial one.
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  core::Session::Options options;
  options.cluster = cluster;
  options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  core::Session session(options);

  GeneratorOptions gw;
  gw.rows = 32;
  gw.cols = 4;
  gw.block_size = 8;
  gw.seed = 41;
  GeneratorOptions gh;
  gh.rows = 4;
  gh.cols = 24;
  gh.block_size = 8;
  gh.seed = 42;
  auto w0 = session.Generate(gw);
  auto h0 = session.Generate(gh);
  auto v = session.Multiply(*w0, *h0);
  ASSERT_TRUE(v.ok());

  core::GnmfOptions gnmf;
  gnmf.factor_dim = 4;
  gnmf.iterations = 60;
  gnmf.track_loss = true;
  auto result = core::RunGnmf(&session, *v, gnmf);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->loss.empty());
  // GNMF's multiplicative updates converge slowly; require a clear drop.
  EXPECT_LT(result->loss.back(), 0.5 * result->loss.front());
}

TEST(IntegrationTest, GpuAndCpuSessionsAgree) {
  core::Session::Options cpu_options;
  cpu_options.cluster = ClusterConfig::Local(2, 2);
  cpu_options.mode = engine::ComputeMode::kCpu;
  cpu_options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  core::Session::Options gpu_options = cpu_options;
  gpu_options.mode = engine::ComputeMode::kGpuStreaming;

  core::Session cpu(cpu_options);
  core::Session gpu(gpu_options);
  GeneratorOptions ga;
  ga.rows = 40;
  ga.cols = 40;
  ga.block_size = 8;
  ga.seed = 51;
  GeneratorOptions gb = ga;
  gb.seed = 52;
  auto a1 = cpu.Generate(ga);
  auto b1 = cpu.Generate(gb);
  auto a2 = gpu.Generate(ga);
  auto b2 = gpu.Generate(gb);
  auto c_cpu = cpu.Multiply(*a1, *b1);
  auto c_gpu = gpu.Multiply(*a2, *b2);
  ASSERT_TRUE(c_cpu.ok() && c_gpu.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c_cpu->Collect().ToDense(),
                                    c_gpu->Collect().ToDense()),
            1e-9);
}

}  // namespace
}  // namespace distme
