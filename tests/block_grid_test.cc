#include <gtest/gtest.h>

#include "common/random.h"
#include "matrix/block_grid.h"

namespace distme {
namespace {

TEST(BlockedShapeTest, BlockCounts) {
  BlockedShape s{100, 55, 10};
  EXPECT_EQ(s.block_rows(), 10);
  EXPECT_EQ(s.block_cols(), 6);
  EXPECT_EQ(s.BlockRowsAt(0), 10);
  EXPECT_EQ(s.BlockColsAt(5), 5);  // edge block is 5 wide
  EXPECT_EQ(s.num_elements(), 5500);
}

TEST(BlockedShapeTest, ExactDivision) {
  BlockedShape s{40, 40, 10};
  EXPECT_EQ(s.block_rows(), 4);
  EXPECT_EQ(s.BlockColsAt(3), 10);
}

TEST(BlockGridTest, PutValidatesIndexAndDims) {
  BlockGrid grid(BlockedShape{20, 20, 10});
  EXPECT_TRUE(grid.Put({0, 0}, Block::Zero(10, 10)).ok());
  EXPECT_FALSE(grid.Put({2, 0}, Block::Zero(10, 10)).ok());  // index range
  EXPECT_FALSE(grid.Put({0, 1}, Block::Zero(5, 10)).ok());   // wrong dims
}

TEST(BlockGridTest, GetMissingReturnsZeroOfRightShape) {
  BlockGrid grid(BlockedShape{25, 15, 10});
  Block b = grid.Get({2, 1});
  EXPECT_EQ(b.rows(), 5);  // edge block
  EXPECT_EQ(b.cols(), 5);
  EXPECT_EQ(b.nnz(), 0);
}

TEST(BlockGridTest, FromDenseToDenseRoundTrip) {
  Rng rng(5);
  DenseMatrix m = DenseMatrix::Random(23, 17, &rng);
  BlockGrid grid = BlockGrid::FromDense(m, 8);
  EXPECT_EQ(grid.block_rows(), 3);
  EXPECT_EQ(grid.block_cols(), 3);
  EXPECT_TRUE(DenseMatrix::ApproxEquals(grid.ToDense(), m, 0.0));
}

TEST(BlockGridTest, FromCsrRoundTrip) {
  Rng rng(6);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 40; ++i) {
    triplets.push_back({static_cast<int64_t>(rng.NextBounded(30)),
                        static_cast<int64_t>(rng.NextBounded(25)),
                        rng.NextDouble() + 0.1});
  }
  auto csr = CsrMatrix::FromTriplets(30, 25, triplets);
  ASSERT_TRUE(csr.ok());
  BlockGrid grid = BlockGrid::FromCsr(*csr, 7);
  EXPECT_TRUE(DenseMatrix::ApproxEquals(grid.ToDense(), csr->ToDense(), 0.0));
  // Sparse input produces sparse blocks.
  for (const auto& [idx, block] : grid.blocks()) {
    EXPECT_TRUE(block.IsSparse());
  }
}

TEST(BlockGridTest, ZeroBlocksAreImplicit) {
  DenseMatrix m(20, 20);  // all zeros
  m.Set(15, 15, 3.0);     // only one block has data
  BlockGrid grid = BlockGrid::FromDense(m, 10);
  EXPECT_EQ(grid.num_blocks(), 1);
  EXPECT_TRUE(grid.Has({1, 1}));
  EXPECT_FALSE(grid.Has({0, 0}));
}

TEST(BlockGridTest, TotalNnzAndSizeBytes) {
  DenseMatrix m(10, 10);
  m.Set(0, 0, 1.0);
  m.Set(9, 9, 2.0);
  BlockGrid grid = BlockGrid::FromDense(m, 5);
  EXPECT_EQ(grid.TotalNnz(), 2);
  EXPECT_GT(grid.SizeBytes(), 0);
}

}  // namespace
}  // namespace distme
