#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"

namespace distme {
namespace {

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  const LogLevel fb = LogLevel::kWarning;
  EXPECT_EQ(ParseLogLevel("debug", fb), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", fb), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning", fb), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn", fb), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", fb), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0", fb), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3", fb), LogLevel::kError);
  // Unrecognized or missing input falls back (the DISTME_LOG_LEVEL default).
  EXPECT_EQ(ParseLogLevel(nullptr, fb), fb);
  EXPECT_EQ(ParseLogLevel("", fb), fb);
  EXPECT_EQ(ParseLogLevel("verbose", fb), fb);
  EXPECT_EQ(ParseLogLevel("42", fb), fb);
}

TEST(LoggingTest, LogThreadIdIsStablePerThreadAndUniqueAcross) {
  const int mine = LogThreadId();
  EXPECT_EQ(LogThreadId(), mine);
  int other = -1;
  std::thread t([&other] { other = LogThreadId(); });
  t.join();
  EXPECT_NE(other, mine);
  EXPECT_GE(other, 0);
}

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These are filtered out; the streaming must still be safe.
  DISTME_LOG(Debug) << "invisible " << 42;
  DISTME_LOG(Info) << "also invisible " << 3.14;
  DISTME_LOG(Warning) << "still invisible";
  SetLogLevel(original);
}

TEST(LoggingTest, EmittedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  DISTME_LOG(Debug) << "debug line " << 1;
  DISTME_LOG(Error) << "error line " << std::string("abc");
  SetLogLevel(original);
}

}  // namespace
}  // namespace distme
