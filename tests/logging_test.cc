#include <gtest/gtest.h>

#include "common/logging.h"

namespace distme {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These are filtered out; the streaming must still be safe.
  DISTME_LOG(Debug) << "invisible " << 42;
  DISTME_LOG(Info) << "also invisible " << 3.14;
  DISTME_LOG(Warning) << "still invisible";
  SetLogLevel(original);
}

TEST(LoggingTest, EmittedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  DISTME_LOG(Debug) << "debug line " << 1;
  DISTME_LOG(Error) << "error line " << std::string("abc");
  SetLogLevel(original);
}

}  // namespace
}  // namespace distme
