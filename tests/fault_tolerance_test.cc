// Fault-injection tests: task attempts crash before their commit point and
// are retried; results must be exactly the same as a failure-free run —
// the lineage-recovery property of the RDD substrate.

#include <gtest/gtest.h>

#include "blas/local_mm.h"
#include "engine/real_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"

namespace distme::engine {
namespace {

struct Inputs {
  BlockGrid a;
  BlockGrid b;
};

Inputs MakeInputs(uint64_t seed) {
  GeneratorOptions ga;
  ga.rows = 48;
  ga.cols = 48;
  ga.block_size = 8;
  ga.sparsity = 1.0;
  ga.seed = seed;
  GeneratorOptions gb = ga;
  gb.seed = seed + 1;
  return {GenerateUniform(ga), GenerateUniform(gb)};
}

TEST(FaultToleranceTest, RetriesProduceExactResult) {
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  Inputs in = MakeInputs(42);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 3);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 3);
  RealExecutor executor(cluster);

  RealOptions faulty;
  faulty.task_failure_rate = 0.3;  // ~30% of attempts crash
  faulty.max_task_attempts = 10;
  auto run = executor.Run(a, b, mm::CuboidMethod(mm::CuboidSpec{2, 3, 2}),
                          faulty);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  EXPECT_GT(run->report.task_retries, 0);

  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

TEST(FaultToleranceTest, AggregatingMethodSurvivesCrashes) {
  // RMM's per-voxel intermediates go through the reducer; a replayed task
  // must not double-count its partial blocks (atomic commit).
  const ClusterConfig cluster = ClusterConfig::Local(2, 3);
  Inputs in = MakeInputs(77);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions faulty;
  faulty.task_failure_rate = 0.4;
  faulty.max_task_attempts = 16;
  auto run = executor.Run(a, b, mm::RmmMethod(), faulty);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  EXPECT_GT(run->report.task_retries, 0);
  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

TEST(FaultToleranceTest, ExhaustedAttemptsFailTheJob) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(99);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions doomed;
  doomed.task_failure_rate = 1.0;  // every attempt crashes
  doomed.max_task_attempts = 3;
  auto run = executor.Run(a, b, mm::CpmmMethod(), doomed);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->report.outcome.ok());
  EXPECT_GE(run->report.task_retries, 3);
}

TEST(FaultToleranceTest, ZeroRateMeansZeroRetries) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(11);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  auto run = executor.Run(a, b, mm::CpmmMethod(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->report.task_retries, 0);
}

TEST(FaultToleranceTest, DeterministicInjection) {
  // Same (rate, task set) → same number of retries: failures are a pure
  // function of (task id, attempt), so runs are reproducible.
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(123);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions faulty;
  faulty.task_failure_rate = 0.5;
  faulty.max_task_attempts = 12;
  auto r1 = executor.Run(a, b, mm::RmmMethod(), faulty);
  auto r2 = executor.Run(a, b, mm::RmmMethod(), faulty);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->report.task_retries, r2->report.task_retries);
}

TEST(FaultToleranceTest, GpuTasksRetryToo) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(55);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions faulty;
  faulty.mode = ComputeMode::kGpuStreaming;
  faulty.task_failure_rate = 0.3;
  faulty.max_task_attempts = 10;
  auto run = executor.Run(a, b, mm::CuboidMethod(mm::CuboidSpec{2, 2, 3}),
                          faulty);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

}  // namespace
}  // namespace distme::engine
