// Fault-injection tests: task attempts crash before their commit point and
// are retried; results must be exactly the same as a failure-free run —
// the lineage-recovery property of the RDD substrate.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "blas/local_mm.h"
#include "engine/real_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "obs/metrics.h"

namespace distme::engine {
namespace {

struct Inputs {
  BlockGrid a;
  BlockGrid b;
};

Inputs MakeInputs(uint64_t seed) {
  GeneratorOptions ga;
  ga.rows = 48;
  ga.cols = 48;
  ga.block_size = 8;
  ga.sparsity = 1.0;
  ga.seed = seed;
  GeneratorOptions gb = ga;
  gb.seed = seed + 1;
  return {GenerateUniform(ga), GenerateUniform(gb)};
}

TEST(FaultToleranceTest, RetriesProduceExactResult) {
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  Inputs in = MakeInputs(42);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 3);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 3);
  RealExecutor executor(cluster);

  RealOptions faulty;
  faulty.task_failure_rate = 0.3;  // ~30% of attempts crash
  faulty.max_task_attempts = 10;
  auto run = executor.Run(a, b, mm::CuboidMethod(mm::CuboidSpec{2, 3, 2}),
                          faulty);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  EXPECT_GT(run->report.task_retries, 0);

  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

TEST(FaultToleranceTest, AggregatingMethodSurvivesCrashes) {
  // RMM's per-voxel intermediates go through the reducer; a replayed task
  // must not double-count its partial blocks (atomic commit).
  const ClusterConfig cluster = ClusterConfig::Local(2, 3);
  Inputs in = MakeInputs(77);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions faulty;
  faulty.task_failure_rate = 0.4;
  faulty.max_task_attempts = 16;
  auto run = executor.Run(a, b, mm::RmmMethod(), faulty);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  EXPECT_GT(run->report.task_retries, 0);
  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

TEST(FaultToleranceTest, ExhaustedAttemptsFailTheJob) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(99);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions doomed;
  doomed.task_failure_rate = 1.0;  // every attempt crashes
  doomed.max_task_attempts = 3;
  auto run = executor.Run(a, b, mm::CpmmMethod(), doomed);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->report.outcome.ok());
  EXPECT_GE(run->report.task_retries, 3);
}

TEST(FaultToleranceTest, ZeroRateMeansZeroRetries) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(11);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  auto run = executor.Run(a, b, mm::CpmmMethod(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->report.task_retries, 0);
}

TEST(FaultToleranceTest, DeterministicInjection) {
  // Same (rate, task set) → same number of retries: failures are a pure
  // function of (task id, attempt), so runs are reproducible.
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(123);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions faulty;
  faulty.task_failure_rate = 0.5;
  faulty.max_task_attempts = 12;
  auto r1 = executor.Run(a, b, mm::RmmMethod(), faulty);
  auto r2 = executor.Run(a, b, mm::RmmMethod(), faulty);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->report.task_retries, r2->report.task_retries);
}

TEST(FaultToleranceTest, GpuTasksRetryToo) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(55);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions faulty;
  faulty.mode = ComputeMode::kGpuStreaming;
  faulty.task_failure_rate = 0.3;
  faulty.max_task_attempts = 10;
  auto run = executor.Run(a, b, mm::CuboidMethod(mm::CuboidSpec{2, 2, 3}),
                          faulty);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

// Runs one faulty configuration and checks lineage recovery end to end:
// the run succeeds, retried at least once, matches LocalMultiply, and (when
// a fault-free reference is supplied) matches it bit-for-bit — a reducer
// block that were double-counted by a replayed attempt would break both.
void ExpectExactAfterFaults(const Inputs& in, const mm::Method& method,
                            FaultPoint point, int prefetch_depth,
                            const DenseMatrix* fault_free) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);

  obs::MetricsRegistry metrics;
  RealOptions faulty;
  faulty.task_failure_rate = 0.4;
  faulty.max_task_attempts = 16;
  faulty.fault_point = point;
  faulty.prefetch_depth = prefetch_depth;
  faulty.enforce_task_memory = true;
  faulty.metrics = &metrics;
  auto run = executor.Run(a, b, method, faulty);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  EXPECT_GT(run->report.task_retries, 0);

  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  const DenseMatrix dense = run->output->Collect().ToDense();
  EXPECT_LT(DenseMatrix::MaxAbsDiff(dense, expected->ToDense()), 1e-9);
  if (fault_free != nullptr) {
    ASSERT_EQ(dense.rows(), fault_free->rows());
    ASSERT_EQ(dense.cols(), fault_free->cols());
    EXPECT_EQ(0, std::memcmp(dense.data(), fault_free->data(),
                             static_cast<size_t>(dense.num_elements()) *
                                 sizeof(double)));
  }

  // Crashed attempts must release every reservation they charged — a leak
  // here would starve later tasks under enforce_task_memory.
  EXPECT_EQ(metrics.GetGauge("distme.memory.task_used_bytes")->Value(), 0);
}

TEST(FaultToleranceTest, CrashMidPrefetchIsRecovered) {
  // The crash lands inside the fetch stage after the first block arrived:
  // the staged inputs and their MemoryTracker charge die with the attempt,
  // and the synchronous retry replays the task exactly.
  Inputs in = MakeInputs(77);
  mm::RmmMethod rmm;
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  auto clean = executor.Run(a, b, rmm, RealOptions{});
  ASSERT_TRUE(clean.ok());
  const DenseMatrix fault_free = clean->output->Collect().ToDense();

  for (int depth : {0, 4}) {
    SCOPED_TRACE("prefetch_depth " + std::to_string(depth));
    ExpectExactAfterFaults(in, rmm, FaultPoint::kMidPrefetch, depth,
                           &fault_free);
  }
}

TEST(FaultToleranceTest, CrashBetweenFetchAndComputeIsRecovered) {
  // Fetch completed, compute never started: the fully-staged inputs are
  // dropped (reservations released) and the retry refetches from scratch.
  Inputs in = MakeInputs(78);
  mm::CpmmMethod cpmm;
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  auto clean = executor.Run(a, b, cpmm, RealOptions{});
  ASSERT_TRUE(clean.ok());
  const DenseMatrix fault_free = clean->output->Collect().ToDense();

  for (int depth : {0, 4}) {
    SCOPED_TRACE("prefetch_depth " + std::to_string(depth));
    ExpectExactAfterFaults(in, cpmm, FaultPoint::kBeforeCompute, depth,
                           &fault_free);
  }
}

TEST(FaultToleranceTest, PipelinedCrashesAcrossAllFaultPoints) {
  // Depth-4 pipeline under every fault point, non-aggregating method: the
  // whole k range commits atomically per output block, so faults can never
  // publish a partial sum.
  Inputs in = MakeInputs(79);
  mm::CuboidMethod cuboid(mm::CuboidSpec{2, 2, 1});
  for (FaultPoint point : {FaultPoint::kBeforeCommit, FaultPoint::kMidPrefetch,
                           FaultPoint::kBeforeCompute}) {
    SCOPED_TRACE("fault point " + std::to_string(static_cast<int>(point)));
    ExpectExactAfterFaults(in, cuboid, point, 4, nullptr);
  }
}

}  // namespace
}  // namespace distme::engine
