// Concurrency stress suite: hammers every shared-state component from many
// threads at once. The assertions here are deliberately coarse (totals add
// up, nothing crashes) — the real assertions are the ones ThreadSanitizer
// makes when scripts/ci.sh --sanitize runs this binary under
// -DDISTME_SANITIZE=thread: any data race in MetricsRegistry, CommMatrix,
// the logging sink, or the RealExecutor task slots fails the build.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/session.h"
#include "engine/real_executor.h"
#include "gpu/device.h"
#include "matrix/generator.h"
#include "obs/comm_matrix.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace distme {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 2000;

/// Runs `fn(thread_index)` on kThreads threads and joins them.
void RunOnThreads(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(fn, t);
  for (auto& th : threads) th.join();
}

// --- MetricsRegistry --------------------------------------------------------

// Writers update counters/gauges/histograms (including racing registration of
// the *same* named instruments) while a reader thread snapshots continuously.
TEST(StressConcurrencyTest, MetricsRegistryHammer) {
  obs::MetricsRegistry registry;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    int64_t snapshots = 0;
    while (!stop.load(std::memory_order_acquire)) {
      obs::MetricsSnapshot snap = registry.Snapshot();
      // Totals may lag the writers but can never be negative or shrink the
      // point list mid-iteration.
      EXPECT_GE(snap.TotalValue("stress.counter"), 0);
      ++snapshots;
    }
    EXPECT_GT(snapshots, 0);
  });

  RunOnThreads([&](int t) {
    const obs::LabelSet labels = {{"thread", std::to_string(t % 4)}};
    for (int i = 0; i < kItersPerThread; ++i) {
      registry.GetCounter("stress.counter", labels)->Add(1);
      registry.GetGauge("stress.gauge")->SetMax(i);
      registry.GetHistogram("stress.histo")->Observe(static_cast<double>(i));
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.TotalValue("stress.counter"),
            int64_t{kThreads} * kItersPerThread);
  const obs::MetricPoint* histo = snap.Find("stress.histo");
  ASSERT_NE(histo, nullptr);
  EXPECT_EQ(histo->value, int64_t{kThreads} * kItersPerThread);
}

// Reset racing with writers must not lose the registry's instruments (only
// their values) and must not trip TSan.
TEST(StressConcurrencyTest, MetricsRegistryResetRace) {
  obs::MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) registry.Reset();
  });
  RunOnThreads([&](int) {
    for (int i = 0; i < kItersPerThread; ++i) {
      registry.GetCounter("stress.reset.counter")->Add(1);
    }
  });
  stop.store(true, std::memory_order_release);
  resetter.join();
  EXPECT_NE(registry.Snapshot().Find("stress.reset.counter"), nullptr);
}

// --- CommMatrix -------------------------------------------------------------

// Concurrent Record() on overlapping links, with a concurrent snapshotter;
// the final snapshot must account for every byte exactly once.
TEST(StressConcurrencyTest, CommMatrixHammer) {
  obs::CommMatrix comm;
  std::atomic<bool> stop{false};

  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::CommMatrixSnapshot snap = comm.Snapshot();
      EXPECT_GE(snap.TotalBytes(), 0);
      EXPECT_GE(snap.SkewRatio(), 0.0);
    }
  });

  RunOnThreads([&](int t) {
    for (int i = 0; i < kItersPerThread; ++i) {
      const int src = t % 4;
      const int dst = (t + 1 + i) % 4;
      comm.Record(i % 2 == 0 ? obs::CommStage::kRepartition
                             : obs::CommStage::kAggregation,
                  src, dst, 8);
    }
  });
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  EXPECT_EQ(comm.Snapshot().TotalBytes(),
            int64_t{8} * kThreads * kItersPerThread);
}

// --- Logging ----------------------------------------------------------------

// Concurrent emission at every level while another thread flips the global
// level: exercises the g_min_level atomic and the line-buffered sink.
TEST(StressConcurrencyTest, LoggingHammer) {
  const LogLevel saved = GetLogLevel();
  std::atomic<bool> stop{false};
  std::thread leveler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      SetLogLevel(LogLevel::kError);
      SetLogLevel(LogLevel::kWarning);
    }
  });
  RunOnThreads([&](int t) {
    for (int i = 0; i < kItersPerThread / 4; ++i) {
      DISTME_LOG(Debug) << "stress debug t=" << t << " i=" << i;
      DISTME_LOG(Error) << "";  // enabled at any level: exercises the sink
      EXPECT_GE(LogThreadId(), 0);
    }
  });
  stop.store(true, std::memory_order_release);
  leveler.join();
  SetLogLevel(saved);
}

// --- FlightRecorder / Sampler -----------------------------------------------

// Writers hammer the lock-free event ring (forcing constant wraparound) while
// one thread snapshots it and a 1 ms background sampler snapshots the registry
// the writers also update. The seqlock must never surface a torn event:
// snapshots stay sorted with unique sequence numbers, and the sampler's time
// series stays strictly monotonic.
TEST(StressConcurrencyTest, FlightRecorderAndSamplerHammer) {
  obs::MetricsRegistry registry;
  obs::CommMatrix comm;
  obs::FlightRecorder flight(256);
  obs::Sampler sampler(&registry, &comm, {.period_ms = 1, .max_samples = 64});
  sampler.Start();
  std::atomic<bool> stop{false};

  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<obs::FlightEvent> events = flight.Snapshot();
      for (size_t i = 1; i < events.size(); ++i) {
        EXPECT_LT(events[i - 1].seq, events[i].seq);
      }
      EXPECT_LE(events.size(), flight.capacity());
    }
  });

  RunOnThreads([&](int t) {
    obs::Counter* counter = registry.GetCounter("stress.flight.events");
    for (int i = 0; i < kItersPerThread; ++i) {
      flight.Record(obs::FlightEventType::kTaskStart, t, i % 4, i, t,
                    "stress");
      counter->Add(1);
    }
  });
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  sampler.Stop();

  EXPECT_EQ(flight.TotalRecorded(),
            uint64_t{kThreads} * static_cast<uint64_t>(kItersPerThread));
  const std::vector<obs::Sample> samples = sampler.Samples();
  EXPECT_GT(sampler.total_samples(), 0);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].ts_us, samples[i].ts_us);
  }
}

// --- GpuDevice --------------------------------------------------------------

// The lock-discipline sweep found Device::stats() and memory_used() returning
// unguarded state while enqueue threads mutate it; both now copy under the
// device mutex. This hammer races enqueuers + allocators against continuous
// readers — under -DDISTME_SANITIZE=thread it is the regression test for
// that fix.
TEST(StressConcurrencyTest, GpuDeviceStatsReaderHammer) {
  GpuSpec spec;
  spec.memory_bytes = 1 << 20;
  gpu::Device device(spec, HardwareModel{});
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Read used before stats: the two getters lock separately, and an
      // allocation between them can push used past an earlier peak
      // snapshot. Peak is monotone, so peak-read-later >= used-read-earlier.
      const int64_t used = device.memory_used();
      const gpu::DeviceStats stats = device.stats();
      EXPECT_GE(stats.h2d_bytes, 0);
      EXPECT_GE(stats.kernel_calls, 0);
      EXPECT_GE(stats.peak_memory_bytes, used);
      EXPECT_GE(device.Synchronize(), 0.0);
    }
  });

  RunOnThreads([&](int t) {
    const gpu::StreamId stream = device.CreateStream();
    for (int i = 0; i < kItersPerThread / 4; ++i) {
      ASSERT_TRUE(device.EnqueueH2D(stream, 256).ok());
      ASSERT_TRUE(device.EnqueueKernel(stream, 1024, {}).ok());
      ASSERT_TRUE(device.EnqueueD2H(stream, 128).ok());
      auto buffer = device.Allocate(64, "stress");
      if (buffer.ok()) {
        EXPECT_TRUE(device.Free(*buffer).ok());
      }
      (void)t;
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();

  const gpu::DeviceStats stats = device.stats();
  const int64_t per_thread = kItersPerThread / 4;
  EXPECT_EQ(stats.h2d_copies, int64_t{kThreads} * per_thread);
  EXPECT_EQ(stats.d2h_copies, int64_t{kThreads} * per_thread);
  EXPECT_EQ(stats.kernel_calls, int64_t{kThreads} * per_thread);
  EXPECT_EQ(device.memory_used(), 0);
}

// --- Tracer -----------------------------------------------------------------

// Same story for Tracer: process_names()/thread_names() used to hand back
// const references to maps that SetProcessName/SetThreadName mutate; they
// now copy under the tracer mutex. Readers iterate their snapshots while
// writers rename tracks and record events into the per-thread buffers.
TEST(StressConcurrencyTest, TracerNameMapReaderHammer) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::map<int, std::string> pids = tracer.process_names();
      for (const auto& [pid, name] : pids) {
        EXPECT_EQ(name, "node-" + std::to_string(pid));
      }
      const auto tids = tracer.thread_names();
      for (const auto& [key, name] : tids) {
        EXPECT_FALSE(name.empty());
      }
      EXPECT_GE(tracer.EventCount(), size_t{0});
    }
  });

  RunOnThreads([&](int t) {
    for (int i = 0; i < kItersPerThread / 4; ++i) {
      tracer.SetProcessName(t, "node-" + std::to_string(t));
      tracer.SetThreadName(t, i % 4, "slot-" + std::to_string(i % 4));
      obs::TraceEvent event;
      event.name = "stress";
      event.pid = t;
      event.tid = i % 4;
      tracer.Record(std::move(event));
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(tracer.process_names().size(), size_t{kThreads});
  EXPECT_EQ(tracer.EventCount(),
            size_t{kThreads} * static_cast<size_t>(kItersPerThread / 4));
  EXPECT_EQ(tracer.Drain().size(),
            size_t{kThreads} * static_cast<size_t>(kItersPerThread / 4));
}

// --- RealExecutor / Session -------------------------------------------------

// Whole-engine stress: several sessions run real multiplies concurrently,
// each spinning up its own RealExecutor task slots, per-node stores, metrics
// registry, tracer, and comm matrix. Catches races between executor
// internals and the shared process state (logging ids, etc.).
TEST(StressConcurrencyTest, MultiSessionMultiplyHammer) {
  constexpr int kSessions = 8;
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  std::atomic<int> failures{0};

  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([s, &failures] {
      core::Session::Options options;
      options.cluster = ClusterConfig::Local(3, 2);
      options.planner = std::make_shared<core::DistmePlanner>(
          mm::OptimizerOptions{.enforce_parallelism = false});
      // Full telemetry on: a 1 ms sampler and watchdog race the executor's
      // metric updates and task slots in every session.
      options.sample_period_ms = 1;
      options.watchdog_period_ms = 1;
      core::Session session(options);
      session.EnableTracing();

      for (int round = 0; round < 3; ++round) {
        GeneratorOptions ga;
        ga.rows = 32;
        ga.cols = 24;
        ga.block_size = 8;
        ga.sparsity = 1.0;
        ga.seed = static_cast<uint64_t>(100 + s * 10 + round);
        GeneratorOptions gb = ga;
        gb.rows = 24;
        gb.cols = 16;
        gb.seed = ga.seed + 1;

        auto a = session.Generate(ga);
        auto b = session.Generate(gb);
        if (!a.ok() || !b.ok()) {
          failures.fetch_add(1);
          break;
        }
        auto c = session.Multiply(*a, *b);
        if (!c.ok() || c->rows() != 32 || c->cols() != 16) {
          failures.fetch_add(1);
          break;
        }
        DISTME_IGNORE_ERROR(session.Sum(*c));
      }
      // The background series must be strictly monotonic even while the
      // executor hammered the registry it samples.
      if (session.sampler() != nullptr) {
        const std::vector<obs::Sample> samples = session.sampler()->Samples();
        for (size_t i = 1; i < samples.size(); ++i) {
          if (samples[i - 1].ts_us >= samples[i].ts_us) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Prefetch pipeline ------------------------------------------------------

// Pipeline hammer: concurrent pipelined runs on an 8-slot cluster (4 nodes ×
// 2 slots), prefetch depth 4 — so every run spins up 8 fetch + 8 compute +
// 8 emit threads crossing its bounded queues and prefetch gates — while a
// 1 ms sampler snapshots the shared registry and a 1 ms watchdog scans the
// flight ring the executor records into. Under TSan this is the regression
// test for the fetch/compute/emit handoff; functionally every pipelined
// result must match the depth-0 bits.
TEST(StressConcurrencyTest, PipelinedMultiplyHammer) {
  constexpr int kRunners = 4;
  obs::MetricsRegistry registry;
  obs::CommMatrix comm;
  obs::FlightRecorder flight(4096);
  obs::Sampler sampler(&registry, &comm, {.period_ms = 1, .max_samples = 64});
  obs::Watchdog watchdog(&registry, &flight, {.period_ms = 1});
  sampler.Start();
  watchdog.Start();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kRunners);
  for (int r = 0; r < kRunners; ++r) {
    threads.emplace_back([r, &registry, &comm, &flight, &watchdog,
                          &failures] {
      GeneratorOptions ga;
      ga.rows = 48;
      ga.cols = 32;
      ga.block_size = 8;
      ga.sparsity = 1.0;
      ga.seed = static_cast<uint64_t>(900 + r);
      GeneratorOptions gb = ga;
      gb.rows = 32;
      gb.cols = 40;
      gb.seed = ga.seed + 1;
      const BlockGrid grid_a = GenerateUniform(ga);
      const BlockGrid grid_b = GenerateUniform(gb);

      const ClusterConfig cluster = ClusterConfig::Local(4, 2);
      engine::DistributedMatrix a =
          engine::DistributedMatrix::FromGridHashed(grid_a, 4);
      engine::DistributedMatrix b =
          engine::DistributedMatrix::FromGridHashed(grid_b, 4);
      engine::RealExecutor executor(cluster);
      mm::RmmMethod method;

      engine::RealOptions legacy;
      auto run0 = executor.Run(a, b, method, legacy);
      if (!run0.ok() || !run0->report.outcome.ok()) {
        failures.fetch_add(1);
        return;
      }
      const DenseMatrix d0 = run0->output->Collect().ToDense();

      for (int round = 0; round < 3; ++round) {
        engine::RealOptions pipelined;
        pipelined.prefetch_depth = 4;
        pipelined.metrics = &registry;
        pipelined.comm = &comm;
        pipelined.flight = &flight;
        pipelined.watchdog = &watchdog;
        auto run = executor.Run(a, b, method, pipelined);
        if (!run.ok() || !run->report.outcome.ok()) {
          failures.fetch_add(1);
          return;
        }
        const DenseMatrix dk = run->output->Collect().ToDense();
        if (dk.rows() != d0.rows() || dk.cols() != d0.cols() ||
            DenseMatrix::MaxAbsDiff(dk, d0) != 0.0) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  watchdog.Stop();
  sampler.Stop();
  EXPECT_EQ(failures.load(), 0);

  // The sampler's series must stay strictly monotonic despite the executor
  // hammering the registry it samples.
  const std::vector<obs::Sample> samples = sampler.Samples();
  EXPECT_GT(sampler.total_samples(), 0);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].ts_us, samples[i].ts_us);
  }
}

}  // namespace
}  // namespace distme
