// Randomized differential suite for the RealExecutor prefetch pipeline:
// generated cases sweep shape, block size, sparsity, method (Cuboid / RMM /
// CPMM), cluster size, and prefetch depth (including depth 0 = the legacy
// synchronous path). Every pipelined run must agree BIT-FOR-BIT with its
// depth-0 twin — aggregation merges partials in deterministic k-order, so
// overlap must never change result bits. Non-aggregating runs additionally
// agree bit-for-bit with blas::LocalMultiply (one task covers the full k
// range per output block, accumulated in the same ascending-k order);
// aggregating methods group the k-axis differently from the local reference,
// so there the comparison is tolerance-based.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "blas/local_mm.h"
#include "engine/real_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"

namespace distme::engine {
namespace {

struct CaseShape {
  int64_t rows_a;
  int64_t inner;
  int64_t cols_b;
};

struct CaseMethod {
  const char* label;
  bool aggregating;
  std::unique_ptr<mm::Method> (*make)();
};

std::unique_ptr<mm::Method> MakeCuboidR1() {
  return std::make_unique<mm::CuboidMethod>(mm::CuboidSpec{2, 2, 1});
}
std::unique_ptr<mm::Method> MakeCuboidR2() {
  return std::make_unique<mm::CuboidMethod>(mm::CuboidSpec{2, 2, 2});
}
std::unique_ptr<mm::Method> MakeRmm() {
  return std::make_unique<mm::RmmMethod>();
}
std::unique_ptr<mm::Method> MakeCpmm() {
  return std::make_unique<mm::CpmmMethod>();
}

bool BitIdentical(const DenseMatrix& x, const DenseMatrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  return std::memcmp(x.data(), y.data(),
                     static_cast<size_t>(x.num_elements()) *
                         sizeof(double)) == 0;
}

TEST(PipelineDifferentialTest, DepthSweepMatchesLegacyAndLocal) {
  const CaseShape shapes[] = {
      {24, 40, 32}, {48, 48, 48}, {64, 32, 40}, {40, 64, 24}};
  const int64_t block_sizes[] = {8, 16};
  const double sparsities[] = {1.0, 0.5, 0.1};
  const int depths[] = {1, 2, 4};
  const CaseMethod methods[] = {
      {"Cuboid(2,2,1)", false, &MakeCuboidR1},
      {"Cuboid(2,2,2)", true, &MakeCuboidR2},
      {"RMM", true, &MakeRmm},
      {"CPMM", true, &MakeCpmm},
  };
  struct ClusterCase {
    int nodes;
    int slots;
  };
  const ClusterCase clusters[] = {{2, 2}, {3, 2}};

  int case_index = 0;
  uint64_t seed = 1000;
  for (const CaseShape& shape : shapes) {
    for (int64_t bs : block_sizes) {
      for (double sparsity : sparsities) {
        // One input pair per (shape, block size, sparsity); the local
        // reference is cluster-independent.
        GeneratorOptions ga;
        ga.rows = shape.rows_a;
        ga.cols = shape.inner;
        ga.block_size = bs;
        ga.sparsity = sparsity;
        ga.seed = ++seed;
        GeneratorOptions gb = ga;
        gb.rows = shape.inner;
        gb.cols = shape.cols_b;
        gb.seed = ++seed;
        const BlockGrid grid_a = GenerateUniform(ga);
        const BlockGrid grid_b = GenerateUniform(gb);
        auto expected = blas::LocalMultiply(grid_a, grid_b);
        ASSERT_TRUE(expected.ok());
        const DenseMatrix expected_dense = expected->ToDense();

        for (const ClusterCase& cc : clusters) {
          const ClusterConfig cluster =
              ClusterConfig::Local(cc.nodes, cc.slots);
          DistributedMatrix a =
              DistributedMatrix::FromGridHashed(grid_a, cc.nodes);
          DistributedMatrix b =
              DistributedMatrix::FromGridHashed(grid_b, cc.nodes);
          RealExecutor executor(cluster);
          for (const CaseMethod& cm : methods) {
            const int depth = depths[case_index % 3];
            ++case_index;
            SCOPED_TRACE(std::string(cm.label) + " " +
                         std::to_string(shape.rows_a) + "x" +
                         std::to_string(shape.inner) + "x" +
                         std::to_string(shape.cols_b) + " bs" +
                         std::to_string(bs) + " sp" +
                         std::to_string(sparsity) + " nodes" +
                         std::to_string(cc.nodes) + " depth" +
                         std::to_string(depth));
            std::unique_ptr<mm::Method> method = cm.make();

            RealOptions legacy;  // depth 0: synchronous fetch→compute→emit
            auto run0 = executor.Run(a, b, *method, legacy);
            ASSERT_TRUE(run0.ok());
            ASSERT_TRUE(run0->report.outcome.ok()) << run0->report.outcome;

            RealOptions pipelined;
            pipelined.prefetch_depth = depth;
            auto runk = executor.Run(a, b, *method, pipelined);
            ASSERT_TRUE(runk.ok());
            ASSERT_TRUE(runk->report.outcome.ok()) << runk->report.outcome;

            const DenseMatrix d0 = run0->output->Collect().ToDense();
            const DenseMatrix dk = runk->output->Collect().ToDense();
            // The tentpole invariant: overlap never changes result bits.
            EXPECT_TRUE(BitIdentical(d0, dk));
            if (cm.aggregating) {
              EXPECT_LT(DenseMatrix::MaxAbsDiff(dk, expected_dense), 1e-9);
            } else {
              EXPECT_TRUE(BitIdentical(dk, expected_dense));
            }

            // Pipeline accounting: every task is popped exactly once.
            EXPECT_EQ(runk->report.pipeline.prefetch_depth, depth);
            EXPECT_EQ(runk->report.pipeline.prefetch_hits +
                          runk->report.pipeline.prefetch_stalls,
                      runk->report.num_tasks);
            EXPECT_EQ(run0->report.pipeline.prefetch_depth, 0);
          }
        }
      }
    }
  }
  // The sweep above is the suite's substance: keep it honest if dimensions
  // are edited.
  EXPECT_GE(case_index, 192);
}

TEST(PipelineTest, GpuStreamingDoubleBufferedHandoffIsExact) {
  // The staged handoff feeds RunCuboidOnGpu directly; depth 4 keeps one
  // staged source filling while the previous one streams to the device.
  GeneratorOptions ga;
  ga.rows = 48;
  ga.cols = 48;
  ga.block_size = 8;
  ga.sparsity = 1.0;
  ga.seed = 7;
  GeneratorOptions gb = ga;
  gb.seed = 8;
  const BlockGrid grid_a = GenerateUniform(ga);
  const BlockGrid grid_b = GenerateUniform(gb);
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(grid_a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(grid_b, 2);
  RealExecutor executor(cluster);
  mm::CuboidMethod method(mm::CuboidSpec{2, 2, 3});

  RealOptions gpu0;
  gpu0.mode = ComputeMode::kGpuStreaming;
  auto run0 = executor.Run(a, b, method, gpu0);
  ASSERT_TRUE(run0.ok());
  ASSERT_TRUE(run0->report.outcome.ok()) << run0->report.outcome;

  RealOptions gpu4 = gpu0;
  gpu4.prefetch_depth = 4;
  auto run4 = executor.Run(a, b, method, gpu4);
  ASSERT_TRUE(run4.ok());
  ASSERT_TRUE(run4->report.outcome.ok()) << run4->report.outcome;

  EXPECT_TRUE(BitIdentical(run0->output->Collect().ToDense(),
                           run4->output->Collect().ToDense()));
  auto expected = blas::LocalMultiply(grid_a, grid_b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run4->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

TEST(PipelineTest, StagingBackpressureShrinksPrefetchAndStaysExact) {
  // A staging budget smaller than one task's inputs collapses the pipeline
  // to one-prefetch-in-flight (the gate always admits an oversized task
  // when empty, so it cannot deadlock) — and results are still exact.
  GeneratorOptions ga;
  ga.rows = 64;
  ga.cols = 64;
  ga.block_size = 8;
  ga.sparsity = 1.0;
  ga.seed = 21;
  GeneratorOptions gb = ga;
  gb.seed = 22;
  const BlockGrid grid_a = GenerateUniform(ga);
  const BlockGrid grid_b = GenerateUniform(gb);
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(grid_a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(grid_b, 2);
  RealExecutor executor(cluster);
  mm::RmmMethod method;

  RealOptions throttled;
  throttled.prefetch_depth = 4;
  throttled.prefetch_staging_bytes = 1;  // every prefetch overshoots
  auto run = executor.Run(a, b, method, throttled);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
  EXPECT_GT(run->report.pipeline.backpressure_waits, 0);

  RealOptions legacy;
  auto run0 = executor.Run(a, b, method, legacy);
  ASSERT_TRUE(run0.ok());
  EXPECT_TRUE(BitIdentical(run->output->Collect().ToDense(),
                           run0->output->Collect().ToDense()));
}

TEST(PipelineTest, WorkerCountDoesNotChangeBits) {
  // Deterministic k-order aggregation also makes results independent of
  // worker count and scheduling order — at any depth.
  GeneratorOptions ga;
  ga.rows = 56;
  ga.cols = 40;
  ga.block_size = 8;
  ga.sparsity = 0.5;
  ga.seed = 31;
  GeneratorOptions gb = ga;
  gb.rows = 40;
  gb.cols = 48;
  gb.seed = 32;
  const BlockGrid grid_a = GenerateUniform(ga);
  const BlockGrid grid_b = GenerateUniform(gb);
  mm::CpmmMethod method;

  DenseMatrix reference;
  bool first = true;
  struct ClusterCase {
    int nodes;
    int slots;
    int depth;
  };
  for (const ClusterCase& cc :
       {ClusterCase{1, 1, 0}, ClusterCase{2, 3, 2}, ClusterCase{4, 2, 4}}) {
    SCOPED_TRACE(std::to_string(cc.nodes) + " nodes x " +
                 std::to_string(cc.slots) + " slots, depth " +
                 std::to_string(cc.depth));
    const ClusterConfig cluster = ClusterConfig::Local(cc.nodes, cc.slots);
    DistributedMatrix a = DistributedMatrix::FromGridHashed(grid_a, cc.nodes);
    DistributedMatrix b = DistributedMatrix::FromGridHashed(grid_b, cc.nodes);
    RealExecutor executor(cluster);
    RealOptions options;
    options.prefetch_depth = cc.depth;
    auto run = executor.Run(a, b, method, options);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;
    const DenseMatrix dense = run->output->Collect().ToDense();
    if (first) {
      reference = dense;
      first = false;
    } else {
      EXPECT_TRUE(BitIdentical(dense, reference));
    }
  }
}

TEST(PipelineTest, NegativeDepthRejected) {
  GeneratorOptions ga;
  ga.rows = 16;
  ga.cols = 16;
  ga.block_size = 8;
  ga.sparsity = 1.0;
  ga.seed = 3;
  const BlockGrid grid = GenerateUniform(ga);
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(grid, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(grid, 2);
  RealExecutor executor(cluster);
  RealOptions bad;
  bad.prefetch_depth = -1;
  auto run = executor.Run(a, b, mm::RmmMethod(), bad);
  EXPECT_FALSE(run.ok());
}

}  // namespace
}  // namespace distme::engine
