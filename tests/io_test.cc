#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "matrix/generator.h"
#include "matrix/io.h"

namespace distme {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(IoTest, CoordinateRoundTrip) {
  GeneratorOptions options;
  options.rows = 37;
  options.cols = 21;
  options.block_size = 10;
  options.sparsity = 0.2;
  BlockGrid grid = GenerateUniform(options);

  const std::string path = TempPath("coord.mtx");
  ASSERT_TRUE(WriteMatrixMarket(grid, path).ok());
  auto restored = ReadMatrixMarket(path, 10);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(
      DenseMatrix::ApproxEquals(restored->ToDense(), grid.ToDense(), 1e-15));
  std::remove(path.c_str());
}

TEST_F(IoTest, DenseGridRoundTrip) {
  GeneratorOptions options;
  options.rows = 12;
  options.cols = 12;
  options.block_size = 5;
  options.sparsity = 1.0;
  BlockGrid grid = GenerateUniform(options);

  const std::string path = TempPath("dense.mtx");
  ASSERT_TRUE(WriteMatrixMarket(grid, path).ok());
  auto restored = ReadMatrixMarket(path, 5);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(
      DenseMatrix::ApproxEquals(restored->ToDense(), grid.ToDense(), 1e-15));
  std::remove(path.c_str());
}

TEST_F(IoTest, RereadWithDifferentBlockSize) {
  GeneratorOptions options;
  options.rows = 30;
  options.cols = 30;
  options.block_size = 10;
  options.sparsity = 0.3;
  BlockGrid grid = GenerateUniform(options);
  const std::string path = TempPath("reblock.mtx");
  ASSERT_TRUE(WriteMatrixMarket(grid, path).ok());
  auto restored = ReadMatrixMarket(path, 7);  // different blocking
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->shape().block_size, 7);
  EXPECT_TRUE(
      DenseMatrix::ApproxEquals(restored->ToDense(), grid.ToDense(), 1e-15));
  std::remove(path.c_str());
}

TEST_F(IoTest, ArrayFormat) {
  const std::string path = TempPath("array.mtx");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // Column-major 2x2: [[1,3],[2,4]].
  std::fprintf(f, "%%%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  std::fclose(f);
  auto grid = ReadMatrixMarket(path, 2);
  ASSERT_TRUE(grid.ok());
  DenseMatrix d = grid->ToDense();
  EXPECT_EQ(d.At(0, 0), 1.0);
  EXPECT_EQ(d.At(1, 0), 2.0);
  EXPECT_EQ(d.At(0, 1), 3.0);
  EXPECT_EQ(d.At(1, 1), 4.0);
  std::remove(path.c_str());
}

TEST_F(IoTest, CommentsAreSkipped) {
  const std::string path = TempPath("comments.mtx");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f,
               "%%%%MatrixMarket matrix coordinate real general\n"
               "%% a comment\n%% another\n2 2 1\n2 2 9.0\n");
  std::fclose(f);
  auto grid = ReadMatrixMarket(path, 2);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->ToDense().At(1, 1), 9.0);
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileFails) {
  EXPECT_FALSE(ReadMatrixMarket("/nonexistent/nowhere.mtx", 10).ok());
}

TEST_F(IoTest, BadBannerFails) {
  const std::string path = TempPath("bad.mtx");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "not a matrix market file\n");
  std::fclose(f);
  EXPECT_FALSE(ReadMatrixMarket(path, 10).ok());
  std::remove(path.c_str());
}

TEST_F(IoTest, PatternFormatNotSupported) {
  const std::string path = TempPath("pattern.mtx");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "%%%%MatrixMarket matrix coordinate pattern general\n1 1 0\n");
  std::fclose(f);
  auto result = ReadMatrixMarket(path, 10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
  std::remove(path.c_str());
}

TEST_F(IoTest, TruncatedDataFails) {
  const std::string path = TempPath("trunc.mtx");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "%%%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n");
  std::fclose(f);
  EXPECT_FALSE(ReadMatrixMarket(path, 10).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace distme
