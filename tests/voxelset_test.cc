#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "mm/plan.h"

namespace distme::mm {
namespace {

using Key = std::tuple<int64_t, int64_t, int64_t>;

std::vector<Key> Enumerate(const VoxelSet& set) {
  std::vector<Key> out;
  set.ForEach([&](Voxel v) { out.emplace_back(v.i, v.j, v.k); });
  return out;
}

TEST(VoxelSetTest, BoxSizeAndBounds) {
  const VoxelSet box = VoxelSet::Box(1, 4, 0, 2, 3, 7);
  EXPECT_TRUE(box.is_box());
  EXPECT_EQ(box.size(), 3 * 2 * 4);
  EXPECT_EQ(box.i_count(), 3);
  EXPECT_EQ(box.j_count(), 2);
  EXPECT_EQ(box.k_count(), 4);
  for (const auto& [i, j, k] : Enumerate(box)) {
    EXPECT_GE(i, 1);
    EXPECT_LT(i, 4);
    EXPECT_GE(j, 0);
    EXPECT_LT(j, 2);
    EXPECT_GE(k, 3);
    EXPECT_LT(k, 7);
  }
}

TEST(VoxelSetTest, BoxEnumeratesEveryVoxelOnce) {
  const VoxelSet box = VoxelSet::Box(0, 3, 1, 4, 2, 5);
  const auto voxels = Enumerate(box);
  const std::set<Key> unique(voxels.begin(), voxels.end());
  EXPECT_EQ(static_cast<int64_t>(voxels.size()), box.size());
  EXPECT_EQ(unique.size(), voxels.size());
}

TEST(VoxelSetTest, EmptyBox) {
  const VoxelSet box = VoxelSet::Box(2, 2, 0, 5, 0, 5);
  EXPECT_EQ(box.size(), 0);
  EXPECT_TRUE(Enumerate(box).empty());
}

class StridedPartitionTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t,
                                                 int64_t>> {};

TEST_P(StridedPartitionTest, ResidueClassesPartitionTheSpace) {
  // Property: the T strided sets {start = t, stride = T} partition the
  // voxel space exactly — the invariant RMM's scatter relies on.
  const auto [big_i, big_j, big_k, stride] = GetParam();
  std::set<Key> seen;
  int64_t total = 0;
  for (int64_t start = 0; start < stride; ++start) {
    const VoxelSet s =
        VoxelSet::Strided(big_i, big_j, big_k, start, stride);
    const auto voxels = Enumerate(s);
    EXPECT_EQ(static_cast<int64_t>(voxels.size()), s.size());
    total += s.size();
    for (const Key& v : voxels) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate voxel";
    }
  }
  EXPECT_EQ(total, big_i * big_j * big_k);
  EXPECT_EQ(static_cast<int64_t>(seen.size()), big_i * big_j * big_k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StridedPartitionTest,
    ::testing::Values(std::make_tuple(4, 5, 6, 7),
                      std::make_tuple(1, 1, 30, 4),
                      std::make_tuple(10, 1, 1, 3),
                      std::make_tuple(3, 3, 3, 27),
                      std::make_tuple(2, 2, 2, 1)));

TEST(VoxelSetTest, StridedDecodeIsRowMajor) {
  // Linear index x = (i·J + j)·K + k.
  const VoxelSet s = VoxelSet::Strided(2, 3, 4, 5, 100);  // just x = 5
  const auto voxels = Enumerate(s);
  ASSERT_EQ(voxels.size(), 1u);
  EXPECT_EQ(voxels[0], Key(0, 1, 1));  // 5 = (0*3+1)*4 + 1
}

TEST(VoxelSetTest, StridedStartBeyondEndIsEmpty) {
  const VoxelSet s = VoxelSet::Strided(2, 2, 2, 8, 3);
  EXPECT_EQ(s.size(), 0);
  EXPECT_TRUE(Enumerate(s).empty());
}

TEST(VoxelSetTest, StridedVoxelsAreNonConsecutive) {
  // With stride > 1 a set never contains two linearly-adjacent voxels —
  // the "non-consecutive voxels" property of RMM (Section 3.1).
  const int64_t stride = 7;
  const VoxelSet s = VoxelSet::Strided(4, 4, 4, 2, stride);
  std::vector<int64_t> linear;
  s.ForEach([&](Voxel v) { linear.push_back((v.i * 4 + v.j) * 4 + v.k); });
  for (size_t n = 1; n < linear.size(); ++n) {
    EXPECT_EQ(linear[n] - linear[n - 1], stride);
  }
}

}  // namespace
}  // namespace distme::mm
