// Tests for the GPU engine-timeline reconstruction (obs/gpu_timeline):
// tag packing, FIFO begin/end pairing, run bracketing, and the overlap
// accounting's hard invariants — per-engine busy + idle tiles the
// device-active window exactly, and overlapped <= min(copy, kernel).

#include <gtest/gtest.h>

#include "gpu/device.h"
#include "obs/flight_recorder.h"
#include "obs/gpu_timeline.h"

namespace distme::obs {
namespace {

using Type = FlightEventType;

TEST(GpuTagTest, RoundTrips) {
  const int64_t packed = PackGpuTag(3, 12345, 67);
  const GpuTag tag = UnpackGpuTag(packed);
  EXPECT_EQ(tag.ordinal, 3);
  EXPECT_EQ(tag.cuboid_id, 12345);
  EXPECT_EQ(tag.sub_index, 67);
}

TEST(GpuTagTest, NegativeCuboidUsesSentinel) {
  const GpuTag tag = UnpackGpuTag(PackGpuTag(0, -1, 4));
  EXPECT_EQ(tag.cuboid_id, -1);
  EXPECT_EQ(tag.sub_index, 4);
}

TEST(GpuTagTest, WithOrdinalReplacesOnlyOrdinal) {
  const int64_t base = PackGpuTag(0, 99, 7);
  const GpuTag tag = UnpackGpuTag(GpuTagWithOrdinal(5, base));
  EXPECT_EQ(tag.ordinal, 5);
  EXPECT_EQ(tag.cuboid_id, 99);
  EXPECT_EQ(tag.sub_index, 7);
}

// Emits one complete [begin, end) interval on `flight`.
void Interval(FlightRecorder* flight, Type begin, Type end, int64_t b_us,
              int64_t e_us, int64_t payload, int64_t tag, int32_t node = 0,
              int32_t slot = 0) {
  flight->RecordAt(b_us, begin, node, slot, payload, tag);
  flight->RecordAt(e_us, end, node, slot, payload, tag);
}

// A hand-crafted schedule with known answers:
//   h2d    [0, 100)               1000 bytes
//   kernel [50, 250) and [400, 500)
//   d2h    [240, 300)             500 bytes
// Window [0, 500). Expected buckets (priority kernel > h2d > d2h > bubble):
// kernel-bound 300, h2d-bound [0,50) = 50, d2h-bound [250,300) = 50,
// bubble [300,400) = 100 — the four tile the window exactly.
TEST(GpuTimelineTest, HandCraftedScheduleExactAccounting) {
  FlightRecorder flight(128);
  const int64_t tag = PackGpuTag(0, 1, 0);
  Interval(&flight, Type::kGpuH2dBegin, Type::kGpuH2dEnd, 0, 100, 1000, tag);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 50, 250,
           7000, tag);
  Interval(&flight, Type::kGpuD2hBegin, Type::kGpuD2hEnd, 240, 300, 500,
           tag);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 400, 500,
           3000, tag);

  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 1u);
  const OverlapReport& r = analysis.devices[0].report;
  EXPECT_EQ(r.window_begin_us, 0);
  EXPECT_EQ(r.window_end_us, 500);
  EXPECT_EQ(r.h2d_busy_us, 100);
  EXPECT_EQ(r.d2h_busy_us, 60);
  EXPECT_EQ(r.kernel_busy_us, 300);
  EXPECT_EQ(r.copy_busy_us, 160);
  // copy ∩ kernel = [50,100) ∪ [240,250).
  EXPECT_EQ(r.overlapped_us, 60);
  EXPECT_EQ(r.kernel_bound_us, 300);
  EXPECT_EQ(r.h2d_bound_us, 50);
  EXPECT_EQ(r.d2h_bound_us, 50);
  EXPECT_EQ(r.bubble_us, 100);
  ASSERT_EQ(r.bubble_count, 1);
  EXPECT_EQ(r.bubbles[0], std::make_pair(int64_t{300}, int64_t{400}));
  EXPECT_EQ(r.h2d_bytes, 1000);
  EXPECT_EQ(r.d2h_bytes, 500);
  EXPECT_EQ(r.kernel_flops, 10000);
  EXPECT_EQ(r.h2d_copies, 1);
  EXPECT_EQ(r.d2h_copies, 1);
  EXPECT_EQ(r.kernel_launches, 2);
  // The invariants, stated directly:
  EXPECT_EQ(r.kernel_bound_us + r.h2d_bound_us + r.d2h_bound_us + r.bubble_us,
            r.window_us());
  EXPECT_LE(r.overlapped_us, std::min(r.copy_busy_us, r.kernel_busy_us));
  EXPECT_DOUBLE_EQ(r.overlap_ratio(), 60.0 / 160.0);
  EXPECT_DOUBLE_EQ(r.kernel_utilization(), 300.0 / 500.0);
  // 1500 bytes over 160 µs of copy-engine time.
  EXPECT_DOUBLE_EQ(r.effective_pcie_bytes_per_sec(), 1500.0 / 160e-6);
}

TEST(GpuTimelineTest, PerCuboidReportsPartitionTheDevice) {
  FlightRecorder flight(128);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 100, 10,
           PackGpuTag(0, 5, 0));
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 150, 300, 20,
           PackGpuTag(0, 9, 1));
  // Untagged work belongs to the device report only.
  Interval(&flight, Type::kGpuH2dBegin, Type::kGpuH2dEnd, 300, 320, 64,
           PackGpuTag(0, -1, 0));

  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 1u);
  const GpuDeviceTimeline& device = analysis.devices[0];
  EXPECT_EQ(device.report.kernel_launches, 2);
  EXPECT_EQ(device.report.h2d_copies, 1);
  ASSERT_EQ(device.cuboids.size(), 2u);
  EXPECT_EQ(device.cuboids.at(5).kernel_busy_us, 100);
  EXPECT_EQ(device.cuboids.at(9).kernel_busy_us, 150);
  EXPECT_EQ(device.cuboids.at(9).window_begin_us, 150);
}

TEST(GpuTimelineTest, DevicesKeyedByNodeAndOrdinal) {
  FlightRecorder flight(128);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 100, 1,
           PackGpuTag(0, -1, 0), /*node=*/0);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 200, 1,
           PackGpuTag(1, -1, 0), /*node=*/0);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 300, 1,
           PackGpuTag(0, -1, 0), /*node=*/1);

  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 3u);
  EXPECT_EQ(analysis.devices[0].node, 0);
  EXPECT_EQ(analysis.devices[0].ordinal, 0);
  EXPECT_EQ(analysis.devices[1].ordinal, 1);
  EXPECT_EQ(analysis.devices[2].node, 1);
  // Run aggregate: window is the sum of device windows.
  EXPECT_EQ(analysis.run.window_us(), 100 + 200 + 300);
  EXPECT_EQ(analysis.run.kernel_launches, 3);
}

TEST(GpuTimelineTest, BracketsToTheLastCompleteRun) {
  FlightRecorder flight(128);
  const int64_t tag = PackGpuTag(0, -1, 0);
  // A stale interval from an earlier run, then the bracketed run, then a
  // trailing interval after run_finish: only the middle one counts.
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 50, 1,
           tag);
  flight.Record(Type::kRunStart, -1, -1, 1, 0, "real");
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 100, 180, 2,
           tag);
  flight.Record(Type::kRunFinish, -1, -1, 1, 0);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 200, 260, 3,
           tag);

  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 1u);
  EXPECT_EQ(analysis.devices[0].report.kernel_launches, 1);
  EXPECT_EQ(analysis.devices[0].report.window_begin_us, 100);
  EXPECT_EQ(analysis.devices[0].report.window_end_us, 180);
}

TEST(GpuTimelineTest, OrphanEndsAndUnmatchedBeginsAreDropped) {
  FlightRecorder flight(128);
  const int64_t tag = PackGpuTag(0, -1, 0);
  // An end whose begin fell off the ring, one complete pair, and a begin
  // whose end lies outside the snapshot.
  flight.RecordAt(40, Type::kGpuKernelEnd, 0, 0, 1, tag);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 100, 150, 2,
           tag);
  flight.RecordAt(200, Type::kGpuKernelBegin, 0, 0, 3, tag);

  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 1u);
  EXPECT_EQ(analysis.devices[0].report.kernel_launches, 1);
  EXPECT_EQ(analysis.devices[0].report.kernel_busy_us, 50);
}

TEST(GpuTimelineTest, AllocMarksFeedOccupancyHighWater) {
  FlightRecorder flight(128);
  flight.RecordAt(0, Type::kGpuAlloc, 0, -1, 1000, PackGpuTag(0, -1, 0),
                  "alloc");
  flight.RecordAt(5, Type::kGpuAlloc, 0, -1, 3000, PackGpuTag(0, -1, 0),
                  "alloc");
  flight.RecordAt(9, Type::kGpuAlloc, 0, -1, 2000, PackGpuTag(0, -1, 0),
                  "free");
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 10, 1,
           PackGpuTag(0, -1, 0));

  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 1u);
  EXPECT_EQ(analysis.devices[0].occupancy_high_water_bytes, 3000);
  EXPECT_EQ(analysis.occupancy_high_water_bytes, 3000);
}

TEST(GpuTimelineTest, EmptySnapshotYieldsEmptyAnalysis) {
  FlightRecorder flight(16);
  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  EXPECT_TRUE(analysis.empty());
  EXPECT_EQ(analysis.run.window_us(), 0);
  EXPECT_DOUBLE_EQ(analysis.run.overlap_ratio(), 0.0);
}

TEST(GpuTimelineTest, ZeroLengthIntervalsDoNotSplitBubbles) {
  FlightRecorder flight(128);
  const int64_t tag = PackGpuTag(0, -1, 0);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 100, 1,
           tag);
  // A copy so small it rounds to zero µs, in the middle of an idle gap.
  Interval(&flight, Type::kGpuH2dBegin, Type::kGpuH2dEnd, 150, 150, 8, tag);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 200, 300, 1,
           tag);

  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  ASSERT_EQ(analysis.devices.size(), 1u);
  const OverlapReport& r = analysis.devices[0].report;
  EXPECT_EQ(r.bubble_us, 100);
  EXPECT_EQ(r.bubble_count, 1);  // [100,150) and [150,200) merged
  EXPECT_EQ(r.bubbles[0], std::make_pair(int64_t{100}, int64_t{200}));
  EXPECT_EQ(r.h2d_copies, 1);  // still counted, still carries its bytes
  EXPECT_EQ(r.h2d_bytes, 8);
}

// Integration: a real (software) device with an attached recorder. The
// reconstruction must agree with the device's own counters, and every
// begin must have its end (the enqueues emit pairs back to back).
TEST(GpuTimelineTest, DeviceEmitsBalancedPairsMatchingItsCounters) {
  FlightRecorder flight(1024);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  device.AttachFlight(&flight, /*node=*/2, /*ordinal=*/1);

  auto buffer = device.Allocate(1 * kMiB, "test");
  ASSERT_TRUE(buffer.ok());
  const gpu::StreamId s0 = device.CreateStream();
  const gpu::StreamId s1 = device.CreateStream();
  const int64_t tag = PackGpuTag(0, 42, 0);
  ASSERT_TRUE(device.EnqueueH2D(s0, 4 * kMiB, tag).ok());
  ASSERT_TRUE(device.EnqueueH2D(s1, 2 * kMiB, tag).ok());
  ASSERT_TRUE(device.EnqueueKernel(s0, 100000000, nullptr, false, tag).ok());
  ASSERT_TRUE(device.EnqueueD2H(s0, 1 * kMiB, tag).ok());
  device.Synchronize();
  ASSERT_TRUE(device.Free(*buffer).ok());

  int begins = 0;
  int ends = 0;
  for (const FlightEvent& e : flight.Snapshot()) {
    switch (e.type) {
      case Type::kGpuH2dBegin:
      case Type::kGpuD2hBegin:
      case Type::kGpuKernelBegin:
        ++begins;
        break;
      case Type::kGpuH2dEnd:
      case Type::kGpuD2hEnd:
      case Type::kGpuKernelEnd:
        ++ends;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(begins, 4);
  EXPECT_EQ(ends, 4);

  const GpuTimelineAnalysis analysis =
      AnalyzeGpuTimeline(flight.Snapshot(), HardwareModel{}.pcie_bandwidth);
  ASSERT_EQ(analysis.devices.size(), 1u);
  const GpuDeviceTimeline& dev = analysis.devices[0];
  EXPECT_EQ(dev.node, 2);
  EXPECT_EQ(dev.ordinal, 1);
  const OverlapReport& r = dev.report;
  EXPECT_EQ(r.h2d_copies, device.stats().h2d_copies);
  EXPECT_EQ(r.d2h_copies, device.stats().d2h_copies);
  EXPECT_EQ(r.kernel_launches, device.stats().kernel_calls);
  EXPECT_EQ(r.h2d_bytes, device.stats().h2d_bytes);
  EXPECT_EQ(r.d2h_bytes, device.stats().d2h_bytes);
  // Busy times match the device's virtual engine-busy seconds to µs
  // rounding (one llround per interval endpoint: ±1 µs per interval).
  EXPECT_NEAR(static_cast<double>(r.h2d_busy_us) * 1e-6,
              device.stats().h2d_seconds, 2e-6 * 2);
  EXPECT_NEAR(static_cast<double>(r.kernel_busy_us) * 1e-6,
              device.stats().kernel_seconds, 2e-6);
  // The invariants hold on a machine-generated schedule too.
  EXPECT_EQ(r.kernel_bound_us + r.h2d_bound_us + r.d2h_bound_us + r.bubble_us,
            r.window_us());
  EXPECT_LE(r.overlapped_us, std::min(r.copy_busy_us, r.kernel_busy_us));
  // Allocate/Free left their occupancy marks.
  EXPECT_EQ(dev.occupancy_high_water_bytes, 1 * kMiB);
  // The whole cuboid was tagged 42.
  ASSERT_EQ(dev.cuboids.size(), 1u);
  EXPECT_EQ(dev.cuboids.at(42).kernel_launches, 1);
}

TEST(GpuTimelineTest, JsonCarriesTheSchema) {
  FlightRecorder flight(64);
  Interval(&flight, Type::kGpuKernelBegin, Type::kGpuKernelEnd, 0, 10, 5,
           PackGpuTag(0, 3, 1));
  const GpuTimelineAnalysis analysis = AnalyzeGpuTimeline(flight.Snapshot());
  const std::string json = analysis.ToJson();
  EXPECT_NE(json.find("\"devices\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"run\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kernel_bound_us\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cuboid_id\":3"), std::string::npos) << json;
}

}  // namespace
}  // namespace distme::obs
