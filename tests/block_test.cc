#include <gtest/gtest.h>

#include "common/random.h"
#include "matrix/block.h"
#include "matrix/serialize.h"

namespace distme {
namespace {

Block MakeDenseBlock(int64_t rows, int64_t cols, uint64_t seed = 1) {
  Rng rng(seed);
  return Block::Dense(DenseMatrix::Random(rows, cols, &rng));
}

Block MakeSparseBlock(int64_t rows, int64_t cols, int nnz, uint64_t seed = 2) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  for (int i = 0; i < nnz; ++i) {
    triplets.push_back({static_cast<int64_t>(rng.NextBounded(rows)),
                        static_cast<int64_t>(rng.NextBounded(cols)),
                        rng.NextDouble() + 0.5});
  }
  return Block::Sparse(*CsrMatrix::FromTriplets(rows, cols, triplets));
}

TEST(BlockTest, DenseBasics) {
  Block b = MakeDenseBlock(4, 6);
  EXPECT_TRUE(b.IsDense());
  EXPECT_EQ(b.format(), BlockFormat::kDense);
  EXPECT_EQ(b.rows(), 4);
  EXPECT_EQ(b.cols(), 6);
  EXPECT_EQ(b.SizeBytes(), 4 * 6 * 8);
}

TEST(BlockTest, SparseBasics) {
  Block b = MakeSparseBlock(10, 10, 5);
  EXPECT_TRUE(b.IsSparse());
  EXPECT_LE(b.nnz(), 5);  // duplicates may merge
  EXPECT_GT(b.nnz(), 0);
}

TEST(BlockTest, ZeroBlock) {
  Block z = Block::Zero(3, 5);
  EXPECT_EQ(z.nnz(), 0);
  EXPECT_TRUE(z.IsSparse());
  EXPECT_EQ(z.rows(), 3);
  EXPECT_EQ(z.cols(), 5);
  DenseMatrix d = z.ToDense();
  EXPECT_EQ(d.CountNonZeros(), 0);
}

TEST(BlockTest, AtDispatchesOnFormat) {
  Block dense = MakeDenseBlock(3, 3, 7);
  Block sparse = Block::Sparse(CsrMatrix::FromDense(dense.dense()));
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(dense.At(r, c), sparse.At(r, c));
    }
  }
}

TEST(BlockTest, SharedPayloadIsCheapToCopy) {
  Block b = MakeDenseBlock(100, 100);
  Block copy = b;  // replication must not deep-copy (RMM replicates J times)
  EXPECT_EQ(&b.dense(), &copy.dense());
}

TEST(BlockTest, CompactedConvertsSparseEnoughBlocks) {
  DenseMatrix mostly_zero(10, 10);
  mostly_zero.Set(0, 0, 1.0);
  Block b = Block::Dense(mostly_zero).Compacted();
  EXPECT_TRUE(b.IsSparse());

  Block dense = MakeDenseBlock(10, 10);
  EXPECT_TRUE(dense.Compacted().IsDense());
}

TEST(BlockTest, DensifiedIsIdempotent) {
  Block sparse = MakeSparseBlock(5, 5, 3);
  Block dense = sparse.Densified();
  EXPECT_TRUE(dense.IsDense());
  EXPECT_TRUE(DenseMatrix::ApproxEquals(dense.dense(), sparse.ToDense(), 0.0));
  EXPECT_TRUE(dense.Densified().IsDense());
}

TEST(SerializeTest, DenseRoundTrip) {
  Block original = MakeDenseBlock(7, 5, 42);
  auto buffer = SerializeBlock(original);
  EXPECT_EQ(static_cast<int64_t>(buffer.size()),
            SerializedBlockBytes(original));
  auto restored = DeserializeBlock(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->IsDense());
  EXPECT_TRUE(
      DenseMatrix::ApproxEquals(restored->dense(), original.dense(), 0.0));
}

TEST(SerializeTest, SparseRoundTrip) {
  Block original = MakeSparseBlock(20, 15, 30, 9);
  auto buffer = SerializeBlock(original);
  EXPECT_EQ(static_cast<int64_t>(buffer.size()),
            SerializedBlockBytes(original));
  auto restored = DeserializeBlock(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->IsSparse());
  EXPECT_EQ(restored->nnz(), original.nnz());
  EXPECT_TRUE(
      DenseMatrix::ApproxEquals(restored->ToDense(), original.ToDense(), 0.0));
}

TEST(SerializeTest, ZeroBlockRoundTrip) {
  Block z = Block::Zero(4, 4);
  auto restored = DeserializeBlock(SerializeBlock(z));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->nnz(), 0);
  EXPECT_EQ(restored->rows(), 4);
}

TEST(SerializeTest, RejectsBadMagic) {
  Block b = MakeDenseBlock(2, 2);
  auto buffer = SerializeBlock(b);
  buffer[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeBlock(buffer).ok());
}

TEST(SerializeTest, RejectsTruncatedBuffer) {
  Block b = MakeDenseBlock(4, 4);
  auto buffer = SerializeBlock(b);
  buffer.resize(buffer.size() / 2);
  EXPECT_FALSE(DeserializeBlock(buffer).ok());
}

TEST(SerializeTest, RejectsEmptyBuffer) {
  EXPECT_FALSE(DeserializeBlock({}).ok());
}

TEST(SerializeTest, SparseCheaperThanDenseForSparseData) {
  Block sparse = MakeSparseBlock(100, 100, 50);
  Block dense = sparse.Densified();
  EXPECT_LT(SerializedBlockBytes(sparse), SerializedBlockBytes(dense));
}

}  // namespace
}  // namespace distme
