#include <gtest/gtest.h>

#include "sim/timeline.h"

namespace distme::sim {
namespace {

TEST(ResourceTimelineTest, GrantsInArrivalOrder) {
  ResourceTimeline r;
  EXPECT_DOUBLE_EQ(r.Schedule(0.0, 2.0), 0.0);  // busy [0,2]
  EXPECT_DOUBLE_EQ(r.Schedule(0.0, 1.0), 2.0);  // waits, busy [2,3]
  EXPECT_DOUBLE_EQ(r.Schedule(10.0, 1.0), 10.0);  // idle gap honoured
  EXPECT_DOUBLE_EQ(r.available(), 11.0);
}

TEST(ResourceTimelineTest, Reset) {
  ResourceTimeline r;
  r.Schedule(0.0, 5.0);
  r.Reset();
  EXPECT_DOUBLE_EQ(r.available(), 0.0);
}

TEST(WaveSchedulerTest, SingleSlotIsSequential) {
  WaveScheduler waves(1);
  waves.Add(1.0);
  waves.Add(2.0);
  waves.Add(3.0);
  EXPECT_DOUBLE_EQ(waves.Makespan(), 6.0);
  EXPECT_EQ(waves.num_tasks(), 3);
}

TEST(WaveSchedulerTest, PerfectParallelism) {
  WaveScheduler waves(4);
  for (int i = 0; i < 4; ++i) waves.Add(2.5);
  EXPECT_DOUBLE_EQ(waves.Makespan(), 2.5);
}

TEST(WaveSchedulerTest, WaveImbalance) {
  // 5 equal tasks on 4 slots: one slot runs two → makespan 2 units.
  WaveScheduler waves(4);
  for (int i = 0; i < 5; ++i) waves.Add(1.0);
  EXPECT_DOUBLE_EQ(waves.Makespan(), 2.0);
}

TEST(WaveSchedulerTest, GreedyEarliestSlot) {
  WaveScheduler waves(2);
  waves.Add(4.0);  // slot A busy until 4
  waves.Add(1.0);  // slot B busy until 1
  waves.Add(1.0);  // goes to B → until 2
  waves.Add(1.0);  // goes to B → until 3
  EXPECT_DOUBLE_EQ(waves.Makespan(), 4.0);
}

TEST(WaveSchedulerTest, LptOrderingImprovesSkewedLoad) {
  // One giant task + many small: submitting the giant last wastes a wave;
  // submitting it first (LPT) overlaps it with the small ones.
  const std::vector<double> small(7, 1.0);
  WaveScheduler plan_order(4);
  for (double d : small) plan_order.Add(d);
  plan_order.Add(5.0);  // giant last
  WaveScheduler lpt(4);
  lpt.Add(5.0);  // giant first
  for (double d : small) lpt.Add(d);
  EXPECT_LT(lpt.Makespan(), plan_order.Makespan());
  EXPECT_DOUBLE_EQ(lpt.Makespan(), 5.0);
}

TEST(ShuffleTest, ScalesWithBytesAndNodes) {
  const double t1 = ShuffleSeconds(1e9, 4, 1e9, 2e9, 1.0);
  const double t2 = ShuffleSeconds(2e9, 4, 1e9, 2e9, 1.0);
  const double t3 = ShuffleSeconds(1e9, 8, 1e9, 2e9, 1.0);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
  EXPECT_NEAR(t3, 0.5 * t1, 1e-12);
}

TEST(ShuffleTest, SlowestPipelineStageDominates) {
  // Serialization slower than the NIC → serialization-bound.
  const double ser_bound = ShuffleSeconds(1e9, 1, 10e9, 1e9, 1.0);
  EXPECT_GE(ser_bound, 1.0);
  // NIC slower → transfer-bound.
  const double nic_bound = ShuffleSeconds(1e9, 1, 1e9, 10e9, 1.0);
  EXPECT_GE(nic_bound, 1.0);
}

TEST(ShuffleTest, SerializationFactorInflates) {
  const double base = ShuffleSeconds(1e9, 4, 1e9, 1e9, 1.0);
  const double inflated = ShuffleSeconds(1e9, 4, 1e9, 1e9, 1.1);
  EXPECT_NEAR(inflated, 1.1 * base, 1e-9);
}

TEST(ShuffleTest, ZeroBytesIsFree) {
  EXPECT_DOUBLE_EQ(ShuffleSeconds(0, 4, 1e9, 1e9, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(PointToPointSeconds(0, 1e9), 0.0);
}

TEST(ShuffleTest, PointToPoint) {
  EXPECT_DOUBLE_EQ(PointToPointSeconds(2e9, 1e9), 2.0);
}

}  // namespace
}  // namespace distme::sim
