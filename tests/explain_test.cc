// Tests for the communication/skew profiler (CommMatrix), per-run histogram
// deltas, and the stage-level ExplainReport (Session::ExplainLastRun).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "engine/explain.h"
#include "engine/real_executor.h"
#include "engine/sim_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "obs/comm_matrix.h"
#include "obs/metrics.h"

namespace distme {
namespace {

using obs::CommMatrix;
using obs::CommMatrixSnapshot;
using obs::CommStage;

// --- CommMatrix ------------------------------------------------------------

TEST(CommMatrixTest, ConcurrentRecordingIsExact) {
  constexpr int kThreads = 8;
  constexpr int kRecords = 20000;
  constexpr int kNodes = 4;

  CommMatrix comm;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&comm, t] {
      for (int i = 0; i < kRecords; ++i) {
        const int src = (t + i) % kNodes;
        const int dst = (t + 3 * i) % kNodes;
        comm.Record(i % 2 == 0 ? CommStage::kRepartition
                               : CommStage::kAggregation,
                    src, dst, 10);
      }
    });
  }
  for (auto& th : threads) th.join();

  const CommMatrixSnapshot snap = comm.Snapshot();
  EXPECT_EQ(snap.num_nodes, kNodes);
  EXPECT_EQ(snap.TotalBytes(),
            static_cast<int64_t>(kThreads) * kRecords * 10);
  EXPECT_EQ(snap.TotalBytes(CommStage::kRepartition) +
                snap.TotalBytes(CommStage::kAggregation),
            snap.TotalBytes());
}

TEST(CommMatrixTest, SkewRatioSeparatesBalancedFromConcentrated) {
  // Balanced all-to-all: every off-diagonal link carries the same bytes.
  CommMatrix balanced;
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src != dst) {
        balanced.Record(CommStage::kRepartition, src, dst, 1000);
      }
    }
  }
  EXPECT_DOUBLE_EQ(balanced.Snapshot().SkewRatio(), 1.0);

  // One link carries everything: skew = N·(N−1) = 12.
  CommMatrix concentrated;
  concentrated.Record(CommStage::kRepartition, 0, 3, 12000);
  EXPECT_DOUBLE_EQ(concentrated.Snapshot().SkewRatio(), 12.0);

  // Nothing recorded: no skew to report.
  CommMatrix empty;
  EXPECT_DOUBLE_EQ(empty.Snapshot().SkewRatio(), 0.0);
}

TEST(CommMatrixTest, IgnoresNonPositiveAndTracksNodeSet) {
  CommMatrix comm;
  EXPECT_EQ(comm.num_nodes(), 0);
  comm.Record(CommStage::kRepartition, 0, 1, 0);
  comm.Record(CommStage::kRepartition, 0, 1, -5);
  EXPECT_EQ(comm.Snapshot().TotalBytes(), 0);
  comm.Record(CommStage::kAggregation, 2, 0, 7);
  EXPECT_EQ(comm.num_nodes(), 3);
  EXPECT_EQ(comm.Snapshot().Bytes(CommStage::kAggregation, 2, 0), 7);
}

TEST(CommMatrixTest, DeltaIsolatesOneRun) {
  CommMatrix comm;
  comm.Record(CommStage::kRepartition, 0, 1, 100);
  const CommMatrixSnapshot before = comm.Snapshot();
  comm.Record(CommStage::kRepartition, 0, 1, 40);
  comm.Record(CommStage::kAggregation, 1, 2, 60);  // widens the node set
  const CommMatrixSnapshot delta = comm.Snapshot().Delta(before);
  EXPECT_EQ(delta.Bytes(CommStage::kRepartition, 0, 1), 40);
  EXPECT_EQ(delta.Bytes(CommStage::kAggregation, 1, 2), 60);
  EXPECT_EQ(delta.TotalBytes(), 100);
}

TEST(CommMatrixTest, TableAndJsonRenderings) {
  CommMatrix comm;
  comm.Record(CommStage::kRepartition, 0, 1, 4096);
  comm.Record(CommStage::kAggregation, 1, 0, 1024);
  const CommMatrixSnapshot snap = comm.Snapshot();
  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("repartition"), std::string::npos);
  EXPECT_NE(table.find("aggregation"), std::string::npos);
  EXPECT_NE(table.find("skew"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"skew_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"max_link_bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
}

// --- Imbalanced Grid partitioning → skewed links ---------------------------

TEST(CommMatrixTest, GridPartitioningOnOneNodeProducesSkewedLinks) {
  // A Grid partitioner whose tile covers the whole block grid homes every
  // block on node 0, so all repartition traffic flows out of node 0 while
  // most (src, dst) pairs stay silent — high skew by construction.
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  GeneratorOptions g;
  g.rows = 64;
  g.cols = 48;
  g.block_size = 8;
  g.sparsity = 1.0;
  g.seed = 31;
  engine::DistributedMatrix a = engine::DistributedMatrix::FromGrid(
      GenerateUniform(g), 3, engine::Partitioner::Grid(3, 100, 100));
  g.rows = 48;
  g.cols = 32;
  g.seed = 32;
  engine::DistributedMatrix b = engine::DistributedMatrix::FromGrid(
      GenerateUniform(g), 3, engine::Partitioner::Grid(3, 100, 100));

  CommMatrix comm;
  engine::RealExecutor executor(cluster);
  engine::RealOptions options;
  options.comm = &comm;
  // BMM has no aggregation step, so the matrix records repartition only.
  auto result = executor.Run(a, b, mm::BmmMethod(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->report.outcome.ok());

  const CommMatrixSnapshot snap = comm.Snapshot();
  ASSERT_GT(snap.TotalBytes(), 0);
  // Every byte originates on node 0 (the only block home).
  for (int src = 1; src < snap.num_nodes; ++src) {
    for (int dst = 0; dst < snap.num_nodes; ++dst) {
      EXPECT_EQ(snap.Bytes(CommStage::kRepartition, src, dst), 0)
          << "unexpected traffic " << src << " -> " << dst;
    }
  }
  // At most 2 of the 6 possible links are active → max ≥ total/2 while the
  // mean divides by all 6, so the skew ratio is at least 3 (allow margin).
  EXPECT_GE(snap.SkewRatio(), 2.0);
  EXPECT_LE(snap.ActiveLinks(), 2);
}

// --- SimExecutor comm accounting -------------------------------------------

TEST(SimCommTest, CommMatrixTotalsMatchTheReport) {
  const ClusterConfig cluster = ClusterConfig::Local(4, 2);
  engine::SimExecutor sim(cluster);
  const mm::MMProblem problem =
      mm::MMProblem::DenseSquareBlocks(512, 512, 512, 64);

  std::vector<std::unique_ptr<mm::Method>> methods;
  methods.push_back(std::make_unique<mm::CpmmMethod>());
  methods.push_back(std::make_unique<mm::BmmMethod>());
  methods.push_back(std::make_unique<mm::RmmMethod>());
  for (const auto& method : methods) {
    CommMatrix comm;
    obs::MetricsRegistry metrics;
    engine::SimOptions options;
    options.comm = &comm;
    options.metrics = &metrics;
    auto report = sim.Run(problem, *method, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    const CommMatrixSnapshot snap = comm.Snapshot();
    // The per-link spread rounds per node per task; totals must still add
    // back up to the report's shuffle bytes.
    const double slack =
        0.01 * report->total_shuffle_bytes() +
        static_cast<double>(report->num_tasks + 1) * cluster.num_nodes;
    EXPECT_NEAR(static_cast<double>(snap.TotalBytes()),
                report->total_shuffle_bytes(), slack)
        << method->name();
    EXPECT_NEAR(static_cast<double>(snap.TotalBytes(CommStage::kRepartition)),
                report->repartition_bytes, slack)
        << method->name();
    // Summary gauges were published into the registry.
    const obs::MetricsSnapshot ms = metrics.Snapshot();
    EXPECT_NE(ms.Find("distme.comm.max_link_bytes"), nullptr);
    EXPECT_NE(ms.Find("distme.comm.skew_permille"), nullptr);
  }
}

// --- HistogramDelta --------------------------------------------------------

TEST(HistogramDeltaTest, DeltaCountsAndPercentilesAreBucketAccurate) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("distme.test.delta");
  h->Observe(1.0);
  h->Observe(2.0);
  const obs::MetricsSnapshot before = registry.Snapshot();
  for (int i = 0; i < 100; ++i) h->Observe(4.0);
  for (int i = 0; i < 5; ++i) h->Observe(64.0);
  const obs::MetricsSnapshot after = registry.Snapshot();

  const obs::MetricPoint* after_point = after.Find("distme.test.delta");
  ASSERT_NE(after_point, nullptr);
  const obs::HistogramDeltaStats delta =
      obs::HistogramDelta(*after_point, before.Find("distme.test.delta"));
  EXPECT_EQ(delta.count, 105);
  EXPECT_DOUBLE_EQ(delta.sum, 100 * 4.0 + 5 * 64.0);
  // 4.0 lands in the [4, 8) bucket; both p50 and p95 fall inside it.
  EXPECT_GE(delta.p50, 4.0);
  EXPECT_LE(delta.p50, 8.0);
  EXPECT_GE(delta.p95, 4.0);
  EXPECT_LE(delta.p95, 8.0);
  // Extremes are bucket bounds tightened by the cumulative min/max.
  EXPECT_DOUBLE_EQ(delta.min, 4.0);
  EXPECT_DOUBLE_EQ(delta.max, 64.0);

  // A null `before` means "since the histogram was created".
  const obs::HistogramDeltaStats full =
      obs::HistogramDelta(*after_point, nullptr);
  EXPECT_EQ(full.count, 107);
}

// --- ExplainReport / Session::ExplainLastRun -------------------------------

Result<core::Matrix> SessionMatrix(core::Session* session, int64_t rows,
                                   int64_t cols, uint64_t seed) {
  GeneratorOptions g;
  g.rows = rows;
  g.cols = cols;
  g.block_size = 8;
  g.sparsity = 1.0;
  g.seed = seed;
  return session->Generate(g);
}

TEST(ExplainTest, ExplainLastRunReportsPredictedVsMeasured) {
  core::Session::Options options;
  options.cluster = ClusterConfig::Local(3, 2);
  core::Session session(options);
  auto a = SessionMatrix(&session, 48, 40, 41);
  auto b = SessionMatrix(&session, 40, 32, 42);
  ASSERT_TRUE(a.ok() && b.ok());

  auto c = session.Multiply(*a, *b);
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  auto explain = session.ExplainLastRun();
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  // The default planner is DistME's optimizer → a CuboidMM plan.
  EXPECT_NE(explain->method_name.find("CuboidMM"), std::string::npos);
  EXPECT_EQ(explain->outcome, "OK");
  ASSERT_EQ(explain->stages.size(), 3u);
  EXPECT_EQ(explain->stages[0].stage, "repartition");
  EXPECT_EQ(explain->stages[1].stage, "multiply");
  EXPECT_EQ(explain->stages[2].stage, "aggregation");
  EXPECT_TRUE(explain->stages[0].has_prediction);
  EXPECT_GT(explain->predicted_total_bytes(), 0.0);
  EXPECT_GT(explain->measured_total_bytes(), 0.0);
  EXPECT_GT(explain->tasks.count, 0);
  EXPECT_GT(explain->tasks.p95_seconds, 0.0);
  EXPECT_GE(explain->tasks.max_seconds, explain->tasks.p95_seconds);
  EXPECT_FALSE(explain->comm.empty());
  EXPECT_GT(explain->comm.TotalBytes(), 0);

  const std::string table = explain->ToTable();
  EXPECT_NE(table.find("repartition"), std::string::npos);
  EXPECT_NE(table.find("straggler"), std::string::npos);

  const std::string json = explain->ToJson();
  for (const char* key :
       {"\"predicted_total_bytes\"", "\"measured_total_bytes\"",
        "\"p95_seconds\"", "\"straggler_ratio\"", "\"stages\"", "\"comm\"",
        "\"skew_ratio\"", "\"measured_peak_task_memory_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ExplainTest, SecondRunIsExplainedByItsOwnDelta) {
  core::Session::Options options;
  options.cluster = ClusterConfig::Local(3, 2);
  core::Session session(options);
  auto a = SessionMatrix(&session, 48, 40, 51);
  auto b = SessionMatrix(&session, 40, 32, 52);
  ASSERT_TRUE(a.ok() && b.ok());

  ASSERT_TRUE(session.Multiply(*a, *b).ok());
  auto first = session.ExplainLastRun();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(session.Multiply(*a, *b).ok());
  auto second = session.ExplainLastRun();
  ASSERT_TRUE(second.ok());

  // Per-run extraction: the second explain covers one run, not the
  // session-cumulative instruments (identical input → similar volume).
  EXPECT_EQ(second->tasks.count, first->tasks.count);
  EXPECT_NEAR(second->comm.TotalBytes(),
              static_cast<double>(first->comm.TotalBytes()),
              0.5 * static_cast<double>(first->comm.TotalBytes()) + 1.0);
}

TEST(ExplainTest, CollectExplainOffMeansNoReport) {
  core::Session::Options options;
  options.cluster = ClusterConfig::Local(2, 2);
  options.collect_explain = false;
  core::Session session(options);
  auto a = SessionMatrix(&session, 32, 24, 61);
  auto b = SessionMatrix(&session, 24, 16, 62);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(session.Multiply(*a, *b).ok());
  EXPECT_FALSE(session.ExplainLastRun().ok());
}

TEST(ExplainTest, BuildFromSimReport) {
  // Explain also works over a simulated run (no registry bracketing at all).
  const ClusterConfig cluster = ClusterConfig::Local(4, 2);
  engine::SimExecutor sim(cluster);
  const mm::MMProblem problem =
      mm::MMProblem::DenseSquareBlocks(512, 512, 512, 64);
  const mm::CpmmMethod method;
  auto report = sim.Run(problem, method, {});
  ASSERT_TRUE(report.ok());

  auto explain =
      engine::BuildExplainReport(*report, method, problem, cluster);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain->method_name, "CPMM");
  EXPECT_GT(explain->predicted_total_bytes(), 0.0);
  EXPECT_GT(explain->measured_total_bytes(), 0.0);
  // Without snapshots the task count falls back to the report's.
  EXPECT_EQ(explain->tasks.count, report->num_tasks);
  EXPECT_TRUE(explain->comm.empty());
}

}  // namespace
}  // namespace distme
