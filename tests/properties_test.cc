// Cross-cutting property tests: invariants of the cost model, optimizer,
// simulator and engine that must hold over whole parameter sweeps, not just
// hand-picked points.

#include <gtest/gtest.h>

#include <tuple>

#include "blas/local_mm.h"
#include "engine/real_executor.h"
#include "engine/sim_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme {
namespace {

using mm::MMProblem;

MMProblem Dense(int64_t i, int64_t k, int64_t j, double sparsity = 1.0) {
  MMProblem p = MMProblem::DenseSquareBlocks(i, k, j, 1000);
  p.a.sparsity = sparsity;
  p.b.sparsity = sparsity;
  return p;
}

// ---- Optimizer properties over a shape sweep ----

class OptimizerSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(OptimizerSweep, OptimumIsFeasibleAndNoWorseThanEndpoints) {
  const auto [i, k, j] = GetParam();
  const MMProblem p = Dense(i, k, j, 0.5);
  const ClusterConfig cluster = ClusterConfig::Paper();
  mm::OptimizerOptions options;
  options.enforce_parallelism = false;
  auto opt = mm::OptimizeCuboid(p, cluster, options);
  ASSERT_TRUE(opt.ok());
  const double theta = 0.9 * static_cast<double>(cluster.task_memory_bytes);
  EXPECT_LE(opt->memory_bytes, theta);
  // The optimum is at least as cheap as the three degenerate corners
  // (BMM-like, CPMM-like, RMM-like) whenever those are feasible.
  for (const mm::CuboidSpec corner :
       {mm::CuboidSpec{p.I(), 1, 1}, mm::CuboidSpec{1, 1, p.K()},
        mm::CuboidSpec{p.I(), p.J(), p.K()}}) {
    if (mm::CuboidMemBytes(p, corner) > theta) continue;
    EXPECT_LE(opt->cost_elements, mm::CuboidCostElements(p, corner))
        << "corner (" << corner.P << "," << corner.Q << "," << corner.R
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OptimizerSweep,
    ::testing::Values(std::make_tuple(50000, 50000, 50000),
                      std::make_tuple(10000, 300000, 10000),
                      std::make_tuple(200000, 2000, 200000),
                      std::make_tuple(30000, 90000, 15000),
                      std::make_tuple(5000, 1000000, 5000),
                      std::make_tuple(120000, 40000, 8000)));

// ---- Simulator monotonicity ----

TEST(SimulatorProperties, MoreNodesNeverSlower) {
  const MMProblem p = Dense(50000, 50000, 50000, 0.5);
  double previous = 1e300;
  for (const int nodes : {3, 9, 27}) {
    ClusterConfig cluster = ClusterConfig::Paper();
    cluster.num_nodes = nodes;
    cluster.timeout_seconds = 1e9;
    engine::SimExecutor executor(cluster);
    auto opt = mm::OptimizeCuboid(p, cluster);
    ASSERT_TRUE(opt.ok());
    auto report = executor.Run(p, mm::CuboidMethod(opt->spec), {});
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->outcome.ok());
    EXPECT_LT(report->elapsed_seconds, previous * 1.02) << nodes << " nodes";
    previous = report->elapsed_seconds;
  }
}

TEST(SimulatorProperties, SparserInputsNeverCostMoreComm) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  double previous = 1e300;
  for (const double sparsity : {1.0, 0.5, 0.1, 0.01}) {
    MMProblem p = Dense(30000, 30000, 30000);
    p.a.sparsity = sparsity;
    p.a.stored_dense = sparsity >= 0.4;
    auto report = executor.Run(p, mm::CpmmMethod(), {});
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->repartition_bytes, previous + 1.0) << sparsity;
    previous = report->repartition_bytes;
  }
}

TEST(SimulatorProperties, SameSpecSameReport) {
  // The simulator is deterministic.
  const MMProblem p = Dense(40000, 40000, 40000, 0.5);
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  engine::SimOptions gpu;
  gpu.mode = engine::ComputeMode::kGpuStreaming;
  auto a = executor.Run(p, mm::CuboidMethod(mm::CuboidSpec{4, 5, 5}), gpu);
  auto b = executor.Run(p, mm::CuboidMethod(mm::CuboidSpec{4, 5, 5}), gpu);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->elapsed_seconds, b->elapsed_seconds);
  EXPECT_DOUBLE_EQ(a->repartition_bytes, b->repartition_bytes);
  EXPECT_DOUBLE_EQ(a->gpu_utilization, b->gpu_utilization);
}

TEST(SimulatorProperties, CommMatchesAnalyticAcrossCuboidSweep) {
  // Executor-accounted repartition/aggregation bytes must equal the Eq.(4)
  // terms for every (P,Q,R), not just the optimum.
  const MMProblem p = Dense(20000, 20000, 20000);
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  const double a_bytes = p.a.StoredBytes();
  const double c_bytes = p.C().StoredBytes();
  for (int64_t pp = 1; pp <= 4; ++pp) {
    for (int64_t qq = 1; qq <= 4; ++qq) {
      for (int64_t rr = 1; rr <= 4; ++rr) {
        auto report =
            executor.Run(p, mm::CuboidMethod(mm::CuboidSpec{pp, qq, rr}), {});
        ASSERT_TRUE(report.ok());
        EXPECT_NEAR(report->repartition_bytes,
                    static_cast<double>(qq) * a_bytes +
                        static_cast<double>(pp) * a_bytes,
                    0.02 * a_bytes)
            << pp << qq << rr;
        const double expected_agg =
            rr > 1 ? static_cast<double>(rr) * c_bytes : 0.0;
        EXPECT_NEAR(report->aggregation_bytes, expected_agg, 0.02 * c_bytes);
      }
    }
  }
}

// ---- Real-execution sweep: sparsity × block size × method ----

class RealSweep
    : public ::testing::TestWithParam<std::tuple<double, int, mm::MethodKind>> {
};

TEST_P(RealSweep, ProductMatchesReference) {
  const auto [sparsity, block_size, kind] = GetParam();
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  GeneratorOptions ga;
  ga.rows = 48;
  ga.cols = 40;
  ga.block_size = block_size;
  ga.sparsity = sparsity;
  ga.seed = 1234;
  GeneratorOptions gb;
  gb.rows = 40;
  gb.cols = 32;
  gb.block_size = block_size;
  gb.sparsity = 1.0;
  gb.seed = 1235;
  BlockGrid grid_a = GenerateUniform(ga);
  BlockGrid grid_b = GenerateUniform(gb);
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(grid_a, 3);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(grid_b, 3);
  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};

  std::unique_ptr<mm::Method> method;
  switch (kind) {
    case mm::MethodKind::kBmm:
      method = std::make_unique<mm::BmmMethod>();
      break;
    case mm::MethodKind::kCpmm:
      method = std::make_unique<mm::CpmmMethod>();
      break;
    case mm::MethodKind::kRmm:
      method = std::make_unique<mm::RmmMethod>();
      break;
    default: {
      auto opt = mm::OptimizeCuboid(problem, cluster,
                                    {.enforce_parallelism = false});
      ASSERT_TRUE(opt.ok());
      method = std::make_unique<mm::CuboidMethod>(opt->spec);
    }
  }
  engine::RealExecutor executor(cluster);
  auto run = executor.Run(a, b, *method, {});
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok());
  auto expected = blas::LocalMultiply(grid_a, grid_b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SparsityBlocksMethods, RealSweep,
    ::testing::Combine(::testing::Values(1.0, 0.3, 0.05),
                       ::testing::Values(8, 16),
                       ::testing::Values(mm::MethodKind::kBmm,
                                         mm::MethodKind::kCpmm,
                                         mm::MethodKind::kRmm,
                                         mm::MethodKind::kCuboid)));

TEST(RealProperties, ManyConcurrentTasksAggregateCorrectly) {
  // Stress the sharded aggregation path: RMM with T = I·J·K single-voxel
  // tasks hammering the reducer from 8 worker threads.
  const ClusterConfig cluster = ClusterConfig::Local(4, 2);
  GeneratorOptions ga;
  ga.rows = 64;
  ga.cols = 64;
  ga.block_size = 8;
  ga.seed = 555;
  GeneratorOptions gb = ga;
  gb.seed = 556;
  BlockGrid grid_a = GenerateUniform(ga);
  BlockGrid grid_b = GenerateUniform(gb);
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(grid_a, 4);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(grid_b, 4);
  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
  mm::RmmMethod rmm(problem.NumVoxels());  // one task per voxel: 512 tasks
  engine::RealExecutor executor(cluster);
  auto run = executor.Run(a, b, rmm, {});
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok());
  EXPECT_EQ(run->report.num_tasks, 512);
  auto expected = blas::LocalMultiply(grid_a, grid_b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

}  // namespace
}  // namespace distme
