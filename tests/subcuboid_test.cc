#include <gtest/gtest.h>

#include "common/units.h"
#include "gpumm/subcuboid.h"

namespace distme::gpumm {
namespace {

SubcuboidProblem DenseCuboid(int64_t i, int64_t j, int64_t k,
                             int64_t bs = 1000) {
  SubcuboidProblem p;
  p.i_blocks = i;
  p.j_blocks = j;
  p.k_blocks = k;
  const double block_bytes = static_cast<double>(bs) * bs * 8;
  p.a_bytes = static_cast<double>(i) * k * block_bytes;
  p.b_bytes = static_cast<double>(k) * j * block_bytes;
  p.c_bytes = static_cast<double>(i) * j * block_bytes;
  p.flops = 2.0 * i * j * k * bs * bs * bs;
  return p;
}

TEST(SubcuboidTest, TendsToOneOneR) {
  // Section 4.2: the optimization tends to produce (1,1,R2) partitioning —
  // C stays resident, only A/B stream in.
  const SubcuboidProblem p = DenseCuboid(2, 3, 40);
  auto opt = OptimizeSubcuboid(p, 1 * kGiB);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->spec.P, 1);
  EXPECT_EQ(opt->spec.Q, 1);
  EXPECT_GT(opt->spec.R, 1);
  EXPECT_LE(opt->memory_bytes, 1.0 * kGiB);
}

TEST(SubcuboidTest, LargeCForcesPQSplits) {
  // When C alone exceeds θg, P2/Q2 must grow (Section 4.2).
  const SubcuboidProblem p = DenseCuboid(20, 20, 1);  // C = 3.2 GB
  auto opt = OptimizeSubcuboid(p, 1 * kGiB);
  ASSERT_TRUE(opt.ok());
  EXPECT_GT(opt->spec.P * opt->spec.Q, 1);
  EXPECT_LE(opt->memory_bytes, 1.0 * kGiB);
}

TEST(SubcuboidTest, CostOmitsR2OnC) {
  // Eq. (6): the C term is not multiplied by R2.
  const SubcuboidProblem p = DenseCuboid(2, 2, 8);
  const double c1 = SubcuboidCostBytes(p, {1, 1, 2});
  const double c2 = SubcuboidCostBytes(p, {1, 1, 8});
  EXPECT_DOUBLE_EQ(c1, c2);
  // But P2/Q2 do multiply the opposite operand.
  EXPECT_GT(SubcuboidCostBytes(p, {2, 1, 2}), c1);
  EXPECT_GT(SubcuboidCostBytes(p, {1, 2, 2}), c1);
}

TEST(SubcuboidTest, InfeasibleWhenBlockExceedsBudget) {
  const SubcuboidProblem p = DenseCuboid(1, 1, 1);
  auto opt = OptimizeSubcuboid(p, 1 * kMiB);  // one voxel is 24 MB
  ASSERT_FALSE(opt.ok());
  EXPECT_TRUE(opt.status().IsOutOfMemory());
}

TEST(SubcuboidTest, SingleVoxelCuboidIsTrivial) {
  const SubcuboidProblem p = DenseCuboid(1, 1, 1);
  auto opt = OptimizeSubcuboid(p, 1 * kGiB);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->spec.num_cuboids(), 1);
  EXPECT_DOUBLE_EQ(opt->pcie_bytes, p.a_bytes + p.b_bytes + p.c_bytes);
}

TEST(SubcuboidTest, MatchesBruteForceOptimum) {
  const SubcuboidProblem p = DenseCuboid(6, 7, 10);
  const int64_t theta = 1 * kGiB;
  auto opt = OptimizeSubcuboid(p, theta);
  ASSERT_TRUE(opt.ok());
  double best = -1;
  for (int64_t p2 = 1; p2 <= p.i_blocks; ++p2) {
    for (int64_t q2 = 1; q2 <= p.j_blocks; ++q2) {
      for (int64_t r2 = 1; r2 <= p.k_blocks; ++r2) {
        const mm::CuboidSpec s{p2, q2, r2};
        if (SubcuboidMemBytes(p, s) > static_cast<double>(theta)) continue;
        const double cost = SubcuboidCostBytes(p, s);
        if (best < 0 || cost < best) best = cost;
      }
    }
  }
  EXPECT_DOUBLE_EQ(opt->pcie_bytes, best);
}

TEST(StreamingEstimateTest, OverlapBeatsBlockLevel) {
  // The streaming executor overlaps H2D with kernels; block-level execution
  // is strictly additive, so it must be slower for the same work.
  const SubcuboidProblem p = DenseCuboid(4, 4, 16);
  HardwareModel hw;
  auto opt = OptimizeSubcuboid(p, 1 * kGiB);
  ASSERT_TRUE(opt.ok());
  const GpuTaskTime streamed = EstimateStreamingTime(p, *opt, hw, false);
  const double block_bytes = 1000.0 * 1000 * 8;
  const GpuTaskTime blocked = EstimateBlockLevelTime(
      4 * 4 * 16, block_bytes, block_bytes, block_bytes, p.flops, hw, false);
  EXPECT_LT(streamed.elapsed_seconds, blocked.elapsed_seconds);
  // Block-level moves every operand per voxel; streaming reuses them.
  EXPECT_LT(opt->pcie_bytes,
            blocked.h2d_seconds * hw.pcie_bandwidth +
                blocked.d2h_seconds * hw.pcie_bandwidth + 1.0);
}

TEST(StreamingEstimateTest, SharingSlowsDown) {
  const SubcuboidProblem p = DenseCuboid(2, 2, 8);
  HardwareModel hw;
  auto opt = OptimizeSubcuboid(p, 1 * kGiB);
  ASSERT_TRUE(opt.ok());
  const GpuTaskTime alone = EstimateStreamingTime(p, *opt, hw, false, 1.0);
  const GpuTaskTime shared = EstimateStreamingTime(p, *opt, hw, false, 10.0);
  EXPECT_GT(shared.elapsed_seconds, alone.elapsed_seconds);
}

TEST(StreamingEstimateTest, SparseKernelsSlower) {
  const SubcuboidProblem p = DenseCuboid(2, 2, 4);
  HardwareModel hw;
  auto opt = OptimizeSubcuboid(p, 1 * kGiB);
  ASSERT_TRUE(opt.ok());
  EXPECT_GT(EstimateStreamingTime(p, *opt, hw, true).kernel_seconds,
            EstimateStreamingTime(p, *opt, hw, false).kernel_seconds);
}

}  // namespace
}  // namespace distme::gpumm
