// Tests for the future-work extensions implemented beyond the paper:
// multiple GPUs per node, LPT load-balanced scheduling, and the skewed
// (Zipf-like) dataset generator.

#include <gtest/gtest.h>

#include "blas/local_mm.h"
#include "engine/real_executor.h"
#include "engine/sim_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme {
namespace {

// ---- Multi-GPU ----

TEST(MultiGpuTest, SimulatedSpeedupOnComputeBoundWork) {
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(40000, 40000, 40000,
                                                     1000);
  auto make_report = [&](int devices) {
    ClusterConfig cluster = ClusterConfig::Paper();
    cluster.gpu.devices_per_node = devices;
    engine::SimExecutor executor(cluster);
    auto opt = mm::OptimizeCuboid(p, cluster);
    EXPECT_TRUE(opt.ok());
    engine::SimOptions gpu;
    gpu.mode = engine::ComputeMode::kGpuStreaming;
    auto report = executor.Run(p, mm::CuboidMethod(opt->spec), gpu);
    EXPECT_TRUE(report.ok());
    return *report;
  };
  const engine::MMReport one = make_report(1);
  const engine::MMReport four = make_report(4);
  ASSERT_TRUE(one.outcome.ok() && four.outcome.ok());
  const double speedup =
      one.steps.multiply_seconds / four.steps.multiply_seconds;
  EXPECT_GT(speedup, 1.8);  // compute-bound: near-linear until PCI-E binds
  EXPECT_LE(speedup, 4.5);
}

TEST(MultiGpuTest, RealExecutionStaysCorrect) {
  ClusterConfig cluster = ClusterConfig::Local(2, 4);
  cluster.gpu.devices_per_node = 2;
  GeneratorOptions ga;
  ga.rows = 40;
  ga.cols = 40;
  ga.block_size = 8;
  ga.seed = 5;
  GeneratorOptions gb = ga;
  gb.seed = 6;
  BlockGrid grid_a = GenerateUniform(ga);
  BlockGrid grid_b = GenerateUniform(gb);
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(grid_a, 2);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(grid_b, 2);
  engine::RealExecutor executor(cluster);
  engine::RealOptions options;
  options.mode = engine::ComputeMode::kGpuStreaming;
  auto run = executor.Run(a, b, mm::CuboidMethod(mm::CuboidSpec{2, 2, 2}),
                          options);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok());
  auto expected = blas::LocalMultiply(grid_a, grid_b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
  EXPECT_GT(run->report.pcie_bytes, 0.0);
}

// ---- LPT scheduling ----

TEST(LptTest, SimMakespanNeverWorse) {
  // A cuboid spec whose splits are uneven creates task-duration skew; LPT
  // must not increase the multiply makespan and usually shrinks it.
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(37000, 41000, 53000,
                                                     1000);
  ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  const mm::CuboidMethod method(mm::CuboidSpec{7, 11, 3});  // 231 tasks
  engine::SimOptions plain;
  engine::SimOptions lpt;
  lpt.lpt_scheduling = true;
  auto base = executor.Run(p, method, plain);
  auto balanced = executor.Run(p, method, lpt);
  ASSERT_TRUE(base.ok() && balanced.ok());
  EXPECT_LE(balanced->steps.multiply_seconds,
            base->steps.multiply_seconds + 1e-9);
}

TEST(LptTest, RealExecutionUnchangedResults) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  GeneratorOptions ga;
  ga.rows = 33;  // deliberately not a multiple of the block size
  ga.cols = 29;
  ga.block_size = 8;
  ga.seed = 9;
  GeneratorOptions gb;
  gb.rows = 29;
  gb.cols = 21;
  gb.block_size = 8;
  gb.seed = 10;
  BlockGrid grid_a = GenerateUniform(ga);
  BlockGrid grid_b = GenerateUniform(gb);
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(grid_a, 2);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(grid_b, 2);
  engine::RealExecutor executor(cluster);
  engine::RealOptions lpt;
  lpt.lpt_scheduling = true;
  auto run = executor.Run(a, b, mm::CuboidMethod(mm::CuboidSpec{2, 2, 2}),
                          lpt);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok());
  auto expected = blas::LocalMultiply(grid_a, grid_b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

// ---- Skewed generator ----

TEST(SkewedGeneratorTest, RowDensityDecreases) {
  GeneratorOptions g;
  g.rows = 100;
  g.cols = 100;
  g.block_size = 10;
  g.sparsity = 0.1;
  g.row_skew = 1.0;
  g.seed = 77;
  BlockGrid grid = GenerateUniform(g);
  // nnz per block row should fall monotonically (statistically).
  std::vector<int64_t> per_row(10, 0);
  for (const auto& [idx, block] : grid.blocks()) {
    per_row[static_cast<size_t>(idx.i)] += block.nnz();
  }
  EXPECT_GT(per_row[0], 3 * per_row[9]);
  EXPECT_GT(per_row[0], per_row[4]);
}

TEST(SkewedGeneratorTest, OverallSparsityPreserved) {
  GeneratorOptions g;
  g.rows = 200;
  g.cols = 200;
  g.block_size = 20;
  g.sparsity = 0.05;
  g.row_skew = 0.8;
  g.seed = 78;
  BlockGrid grid = GenerateUniform(g);
  const double measured =
      static_cast<double>(grid.TotalNnz()) / (200.0 * 200.0);
  EXPECT_NEAR(measured, 0.05, 0.015);
}

TEST(SkewedGeneratorTest, ZeroSkewMatchesUniform) {
  GeneratorOptions g;
  g.rows = 40;
  g.cols = 40;
  g.block_size = 10;
  g.sparsity = 0.3;
  g.seed = 79;
  GeneratorOptions skewless = g;
  skewless.row_skew = 0.0;
  EXPECT_TRUE(DenseMatrix::ApproxEquals(GenerateUniform(g).ToDense(),
                                        GenerateUniform(skewless).ToDense(),
                                        0.0));
}

TEST(SkewedGeneratorTest, DeterministicPerBlock) {
  GeneratorOptions g;
  g.rows = 60;
  g.cols = 60;
  g.block_size = 15;
  g.sparsity = 0.1;
  g.row_skew = 1.2;
  g.seed = 80;
  BlockGrid whole = GenerateUniform(g);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      Block blk = GenerateUniformBlock(g, i, j);
      EXPECT_TRUE(DenseMatrix::ApproxEquals(
          blk.ToDense(), whole.Get({i, j}).ToDense(), 0.0));
    }
  }
}

}  // namespace
}  // namespace distme
