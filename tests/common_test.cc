#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"

namespace distme {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("task 3 needs 7 GB");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(st.message(), "task 3 needs 7 GB");
  EXPECT_EQ(st.ToString(), "OutOfMemory: task 3 needs 7 GB");
}

TEST(StatusTest, CopyAndMove) {
  Status st = Status::Timeout("slow");
  Status copy = st;
  EXPECT_TRUE(copy.IsTimeout());
  EXPECT_TRUE(st.IsTimeout());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsTimeout());
  copy = moved;
  EXPECT_EQ(copy.message(), "slow");
}

TEST(StatusTest, PaperFailureCodes) {
  EXPECT_TRUE(Status::OutOfMemory("").IsOutOfMemory());
  EXPECT_TRUE(Status::Timeout("").IsTimeout());
  EXPECT_TRUE(Status::ExceedsDiskCapacity("").IsExceedsDiskCapacity());
  EXPECT_STREQ(StatusCodeToString(StatusCode::kExceedsDiskCapacity),
               "ExceedsDiskCapacity");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DISTME_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

// --- error discipline: [[nodiscard]] types still move/chain cleanly --------

Status FailingStatus() { return Status::IOError("disk on fire"); }

TEST(ErrorDisciplineTest, NodiscardStatusMovesAndChains) {
  // Capturing, moving, and chaining a [[nodiscard]] Status must all compile
  // and behave; only *dropping* one is a (strict-build) error.
  Status st = FailingStatus();
  Status moved = std::move(st);
  EXPECT_EQ(moved.code(), StatusCode::kIOError);
  Status reassigned;
  reassigned = std::move(moved);
  EXPECT_EQ(reassigned.code(), StatusCode::kIOError);
  EXPECT_EQ(reassigned.ToString(), "IOError: disk on fire");
  // An explicitly ignored error is the sanctioned discard spelling.
  DISTME_IGNORE_ERROR(FailingStatus());
  FailingStatus().IgnoreError();
}

TEST(ErrorDisciplineTest, NodiscardResultMovesAndChains) {
  Result<std::string> r = std::string("payload");
  Result<std::string> moved = std::move(r);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), "payload");
  // Rvalue value() moves the payload out.
  std::string taken = std::move(moved).value();
  EXPECT_EQ(taken, "payload");
  // Value(T*) chains into a Status that itself must not be dropped.
  Result<std::string> r2 = std::string("second");
  std::string out;
  Status st = std::move(r2).Value(&out);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(out, "second");
}

TEST(ErrorDisciplineTest, ResultFromOkStatusDegradesToInternal) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ErrorDisciplineDeathTest, ValueOnErrorAbortsWithMessage) {
  Result<int> r = Status::OutOfMemory("task budget exceeded: 9001 bytes");
  // The abort message must name the accessor and carry the full status, so
  // a crash log alone identifies the failure.
  EXPECT_DEATH(DISTME_IGNORE_ERROR(r.value()),
               "Result::value\\(\\) called on an error Result: "
               "OutOfMemory: task budget exceeded: 9001 bytes");
  EXPECT_DEATH(DISTME_IGNORE_ERROR(*r), "OutOfMemory: task budget exceeded");
  EXPECT_DEATH(DISTME_IGNORE_ERROR(Result<int>(Status::Invalid("bad dim")).value()),
               "Invalid: bad dim");
}

TEST(ErrorDisciplineDeathTest, CheckOkAbortsWithFileAndStatus) {
  EXPECT_DEATH(DISTME_CHECK_OK(Status::Timeout("job exceeded 10s")),
               "DISTME_CHECK_OK failed: Timeout: job exceeded 10s");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextUniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2.0 * kKiB), "2.00 KB");
  EXPECT_EQ(FormatBytes(1.5 * kGiB), "1.50 GB");
  EXPECT_EQ(FormatBytes(36.0 * kTiB), "36.00 TB");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.0), "0.0s");
  EXPECT_EQ(FormatSeconds(0.0000452), "45.2us");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3ms");
  EXPECT_EQ(FormatSeconds(12.34), "12.3s");
  EXPECT_EQ(FormatSeconds(600.0), "10.0m");
  EXPECT_EQ(FormatSeconds(7200.0), "2.00h");
}

TEST(UnitsTest, FormatCount) {
  EXPECT_EQ(FormatCount(70000), "70K");
  EXPECT_EQ(FormatCount(5000000), "5M");
  EXPECT_EQ(FormatCount(1500000), "1.5M");
}

}  // namespace
}  // namespace distme
