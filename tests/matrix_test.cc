#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace distme {
namespace {

TEST(DenseMatrixTest, ConstructZeroInitialized) {
  DenseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.num_elements(), 12);
  EXPECT_EQ(m.SizeBytes(), 96);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(m.At(r, c), 0.0);
  }
}

TEST(DenseMatrixTest, SetGetAdd) {
  DenseMatrix m(2, 2);
  m.Set(0, 1, 3.5);
  m.Add(0, 1, 1.5);
  EXPECT_EQ(m.At(0, 1), 5.0);
  EXPECT_EQ(m.At(1, 0), 0.0);
}

TEST(DenseMatrixTest, CountNonZerosAndSparsity) {
  DenseMatrix m(2, 5);
  m.Set(0, 0, 1.0);
  m.Set(1, 4, -2.0);
  EXPECT_EQ(m.CountNonZeros(), 2);
  EXPECT_DOUBLE_EQ(m.Sparsity(), 0.2);
}

TEST(DenseMatrixTest, Transpose) {
  Rng rng(3);
  DenseMatrix m = DenseMatrix::Random(5, 7, &rng);
  DenseMatrix t = m.Transpose();
  ASSERT_EQ(t.rows(), 7);
  ASSERT_EQ(t.cols(), 5);
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 7; ++c) EXPECT_EQ(m.At(r, c), t.At(c, r));
  }
  // Double transpose is identity.
  EXPECT_TRUE(DenseMatrix::ApproxEquals(m, t.Transpose(), 0.0));
}

TEST(DenseMatrixTest, Identity) {
  DenseMatrix eye = DenseMatrix::Identity(4);
  EXPECT_EQ(eye.CountNonZeros(), 4);
  EXPECT_EQ(eye.At(2, 2), 1.0);
  EXPECT_EQ(eye.At(2, 3), 0.0);
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  DenseMatrix m(1, 2);
  m.Set(0, 0, 3.0);
  m.Set(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(DenseMatrixTest, MaxAbsDiffShapeMismatchIsInfinite) {
  DenseMatrix a(2, 2);
  DenseMatrix b(2, 3);
  EXPECT_TRUE(std::isinf(DenseMatrix::MaxAbsDiff(a, b)));
}

TEST(CsrMatrixTest, FromTripletsSortsAndSumsDuplicates) {
  auto m = CsrMatrix::FromTriplets(
      3, 3, {{2, 1, 4.0}, {0, 0, 1.0}, {2, 1, -1.0}, {1, 2, 2.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 3);
  EXPECT_EQ(m->At(0, 0), 1.0);
  EXPECT_EQ(m->At(2, 1), 3.0);  // 4 - 1
  EXPECT_EQ(m->At(1, 2), 2.0);
  EXPECT_EQ(m->At(1, 1), 0.0);
}

TEST(CsrMatrixTest, DuplicatesCancellingToZeroAreDropped) {
  auto m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 0);
}

TEST(CsrMatrixTest, OutOfRangeTripletRejected) {
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{0, -1, 1.0}}).ok());
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  Rng rng(17);
  DenseMatrix dense(6, 5);
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t c = 0; c < 5; ++c) {
      if (rng.NextDouble() < 0.3) dense.Set(r, c, rng.NextDouble());
    }
  }
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz(), dense.CountNonZeros());
  EXPECT_TRUE(DenseMatrix::ApproxEquals(csr.ToDense(), dense, 0.0));
}

TEST(CsrMatrixTest, Transpose) {
  auto m = CsrMatrix::FromTriplets(2, 3, {{0, 2, 5.0}, {1, 0, 7.0}});
  ASSERT_TRUE(m.ok());
  CsrMatrix t = m->Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(2, 0), 5.0);
  EXPECT_EQ(t.At(0, 1), 7.0);
  EXPECT_EQ(t.nnz(), 2);
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  Rng rng(23);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 50; ++i) {
    triplets.push_back({static_cast<int64_t>(rng.NextBounded(10)),
                        static_cast<int64_t>(rng.NextBounded(8)),
                        rng.NextDouble() + 0.1});
  }
  auto m = CsrMatrix::FromTriplets(10, 8, triplets);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(DenseMatrix::ApproxEquals(m->Transpose().Transpose().ToDense(),
                                        m->ToDense(), 0.0));
}

TEST(CsrMatrixTest, SizeBytesGrowsWithNnz) {
  auto small = CsrMatrix::FromTriplets(4, 4, {{0, 0, 1.0}});
  auto large = CsrMatrix::FromTriplets(
      4, 4, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {3, 3, 1.0}});
  EXPECT_LT(small->SizeBytes(), large->SizeBytes());
}

TEST(CscMatrixTest, FromTripletsAndToDense) {
  auto m = CscMatrix::FromTriplets(3, 2, {{2, 0, 1.5}, {0, 1, 2.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 2);
  DenseMatrix d = m->ToDense();
  EXPECT_EQ(d.At(2, 0), 1.5);
  EXPECT_EQ(d.At(0, 1), 2.5);
}

TEST(CscMatrixTest, FromCsrPreservesValues) {
  auto csr = CsrMatrix::FromTriplets(
      4, 4, {{0, 3, 1.0}, {2, 1, 2.0}, {3, 3, 3.0}});
  ASSERT_TRUE(csr.ok());
  CscMatrix csc = CscMatrix::FromCsr(*csr);
  EXPECT_EQ(csc.nnz(), 3);
  EXPECT_TRUE(DenseMatrix::ApproxEquals(csc.ToDense(), csr->ToDense(), 0.0));
}

TEST(CsrMatrixTest, EmptyMatrix) {
  auto m = CsrMatrix::FromTriplets(0, 0, {});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 0);
  EXPECT_EQ(m->Sparsity(), 0.0);
}

}  // namespace
}  // namespace distme
