#include <gtest/gtest.h>

#include "blas/gemm.h"
#include "core/expr.h"

namespace distme::core {
namespace {

Session MakeSession() {
  Session::Options options;
  options.cluster = ClusterConfig::Local(2, 2);
  options.planner = std::make_shared<DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  return Session(std::move(options));
}

Matrix Gen(Session* session, int64_t rows, int64_t cols, uint64_t seed) {
  GeneratorOptions g;
  g.rows = rows;
  g.cols = cols;
  g.block_size = 8;
  g.sparsity = 1.0;
  g.seed = seed;
  auto m = session->Generate(g);
  EXPECT_TRUE(m.ok());
  return *m;
}

TEST(ExprTest, LeafEvaluatesToItself) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 16, 16, 1);
  auto expr = Expr::Leaf(a, "A");
  auto result = Evaluate(&session, expr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(DenseMatrix::ApproxEquals(result->Collect().ToDense(),
                                        a.Collect().ToDense(), 0.0));
}

TEST(ExprTest, MultiplyChain) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 24, 16, 2);
  Matrix b = Gen(&session, 16, 24, 3);
  Matrix c = Gen(&session, 24, 8, 4);
  // (A × B) × C
  auto expr = Expr::Multiply(
      Expr::Multiply(Expr::Leaf(a, "A"), Expr::Leaf(b, "B")),
      Expr::Leaf(c, "C"));
  EXPECT_EQ(expr->ToString(), "((A x B) x C)");
  EXPECT_EQ(expr->Shape(), (std::pair<int64_t, int64_t>{24, 8}));
  auto result = Evaluate(&session, expr);
  ASSERT_TRUE(result.ok());
  DenseMatrix expected = blas::Multiply(
      blas::Multiply(a.Collect().ToDense(), b.Collect().ToDense()),
      c.Collect().ToDense());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(result->Collect().ToDense(), expected),
            1e-9);
}

TEST(ExprTest, TransposeFoldsAtBuildTime) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 16, 24, 5);
  auto leaf = Expr::Leaf(a, "A");
  auto twice = Expr::Transpose(Expr::Transpose(leaf));
  EXPECT_EQ(twice.get(), leaf.get());  // folded to the original node
  EXPECT_EQ(Expr::Transpose(leaf)->ToString(), "A'");
}

TEST(ExprTest, ScaleFolding) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 8, 8, 6);
  auto expr = Expr::Scale(Expr::Scale(Expr::Leaf(a, "A"), 2.0), 3.0);
  EXPECT_EQ(expr->kind(), ExprKind::kScale);
  EXPECT_EQ(expr->left()->kind(), ExprKind::kLeaf);  // single scale node
  EXPECT_DOUBLE_EQ(expr->scalar(), 6.0);
  auto result = Evaluate(&session, expr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->Collect().ToDense().At(2, 2),
              6.0 * a.Collect().ToDense().At(2, 2), 1e-12);
}

TEST(ExprTest, SharedSubtreeEvaluatedOnce) {
  // The GNMF H-update numerator and denominator both consume Wᵀ: with the
  // DAG, the transpose runs once (DMac-style dependency exploitation).
  Session session = MakeSession();
  Matrix w = Gen(&session, 32, 8, 7);
  Matrix v = Gen(&session, 32, 24, 8);
  Matrix h = Gen(&session, 8, 24, 9);

  auto wt = Expr::Transpose(Expr::Leaf(w, "W"));
  auto wtv = Expr::Multiply(wt, Expr::Leaf(v, "V"));
  auto wtw = Expr::Multiply(wt, Expr::Leaf(w, "W"));
  auto wtwh = Expr::Multiply(wtw, Expr::Leaf(h, "H"));
  auto update = Expr::ElementWise(
      blas::ElementWiseOp::kDiv,
      Expr::ElementWise(blas::ElementWiseOp::kMul, Expr::Leaf(h, "H"), wtv),
      wtwh, 1e-12);

  EvalStats stats;
  auto result = Evaluate(&session, update, &stats);
  ASSERT_TRUE(result.ok());
  // wt appears twice in the DAG but is computed once.
  EXPECT_GE(stats.nodes_reused, 1);
  EXPECT_EQ(stats.multiplications, 3);  // WᵀV, WᵀW, (WᵀW)H

  // Numerically identical to the eager computation.
  auto wt_e = session.Transpose(w);
  auto wtv_e = session.Multiply(*wt_e, v);
  auto wtw_e = session.Multiply(*wt_e, w);
  auto wtwh_e = session.Multiply(*wtw_e, h);
  auto num = session.ElementWise(blas::ElementWiseOp::kMul, h, *wtv_e);
  auto expected =
      session.ElementWise(blas::ElementWiseOp::kDiv, *num, *wtwh_e, 1e-12);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(result->Collect().ToDense(),
                                    expected->Collect().ToDense()),
            1e-9);
}

TEST(ExprTest, ElementWiseSameLeafTwice) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 16, 16, 10);
  auto leaf = Expr::Leaf(a, "A");
  auto squared = Expr::ElementWise(blas::ElementWiseOp::kMul, leaf, leaf);
  auto result = Evaluate(&session, squared);
  ASSERT_TRUE(result.ok());
  const DenseMatrix da = a.Collect().ToDense();
  const DenseMatrix dr = result->Collect().ToDense();
  for (int64_t r = 0; r < 16; ++r) {
    for (int64_t c = 0; c < 16; ++c) {
      EXPECT_NEAR(dr.At(r, c), da.At(r, c) * da.At(r, c), 1e-12);
    }
  }
}

TEST(ExprTest, NullArgumentsRejected) {
  Session session = MakeSession();
  EXPECT_FALSE(Evaluate(&session, nullptr).ok());
  Matrix a = Gen(&session, 8, 8, 11);
  EXPECT_FALSE(Evaluate(nullptr, Expr::Leaf(a, "A")).ok());
}

}  // namespace
}  // namespace distme::core

namespace distme::core {
namespace {

TEST(ChainOptimizerTest, PicksCheaperAssociation) {
  Session session = MakeSession();
  // A: 64×8, B: 8×64, x: 64×8 — (A×B)×x costs 2·64·64·(8+8);
  // A×(B×x) costs 2·8·(64·8 + 64·8): far cheaper per element count.
  Matrix a = Gen(&session, 64, 8, 20);
  Matrix b = Gen(&session, 8, 64, 21);
  Matrix x = Gen(&session, 64, 8, 22);
  auto naive = Expr::Multiply(
      Expr::Multiply(Expr::Leaf(a, "A"), Expr::Leaf(b, "B")),
      Expr::Leaf(x, "x"));
  auto optimized = OptimizeMultiplicationOrder(naive);
  EXPECT_LT(MultiplicationFlops(optimized), MultiplicationFlops(naive));
  EXPECT_EQ(optimized->ToString(), "(A x (B x x))");

  // Same value either way.
  auto v1 = Evaluate(&session, naive);
  auto v2 = Evaluate(&session, optimized);
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(v1->Collect().ToDense(),
                                    v2->Collect().ToDense()),
            1e-9);
}

TEST(ChainOptimizerTest, AlreadyOptimalUnchangedCost) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 16, 16, 23);
  Matrix b = Gen(&session, 16, 16, 24);
  auto expr = Expr::Multiply(Expr::Leaf(a, "A"), Expr::Leaf(b, "B"));
  auto optimized = OptimizeMultiplicationOrder(expr);
  EXPECT_DOUBLE_EQ(MultiplicationFlops(optimized),
                   MultiplicationFlops(expr));
}

TEST(ChainOptimizerTest, FourFactorChain) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 40, 8, 25);
  Matrix b = Gen(&session, 8, 40, 26);
  Matrix c = Gen(&session, 40, 8, 27);
  Matrix d = Gen(&session, 8, 40, 28);
  auto chain = Expr::Multiply(
      Expr::Multiply(Expr::Multiply(Expr::Leaf(a, "A"), Expr::Leaf(b, "B")),
                     Expr::Leaf(c, "C")),
      Expr::Leaf(d, "D"));
  auto optimized = OptimizeMultiplicationOrder(chain);
  EXPECT_LE(MultiplicationFlops(optimized), MultiplicationFlops(chain));
  auto v1 = Evaluate(&session, chain);
  auto v2 = Evaluate(&session, optimized);
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(v1->Collect().ToDense(),
                                    v2->Collect().ToDense()),
            1e-8);
}

TEST(ChainOptimizerTest, PreservesNonMultiplyStructure) {
  Session session = MakeSession();
  Matrix a = Gen(&session, 16, 16, 29);
  auto expr = Expr::Scale(
      Expr::ElementWise(blas::ElementWiseOp::kAdd, Expr::Leaf(a, "A"),
                        Expr::Transpose(Expr::Leaf(a, "A"))),
      2.0);
  auto optimized = OptimizeMultiplicationOrder(expr);
  EXPECT_EQ(optimized->ToString(), expr->ToString());
}

}  // namespace
}  // namespace distme::core
