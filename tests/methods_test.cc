#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>

#include "mm/methods.h"

namespace distme::mm {
namespace {

// Verifies the fundamental plan invariant: the union of all tasks' voxel
// sets covers every (i, j, k) in [0,I)×[0,J)×[0,K) exactly once.
void CheckExactCoverage(const Method& method, const MMProblem& problem,
                        const ClusterConfig& cluster) {
  std::map<std::tuple<int64_t, int64_t, int64_t>, int> counts;
  int64_t tasks_seen = 0;
  ASSERT_TRUE(method
                  .ForEachTask(problem, cluster,
                               [&](const LocalTask& task) {
                                 ++tasks_seen;
                                 task.voxels.ForEach([&](Voxel v) {
                                   ++counts[{v.i, v.j, v.k}];
                                 });
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(static_cast<int64_t>(counts.size()), problem.NumVoxels());
  for (const auto& [voxel, count] : counts) {
    ASSERT_EQ(count, 1) << "voxel covered " << count << " times";
  }
  auto expected_tasks = method.NumTasks(problem, cluster);
  ASSERT_TRUE(expected_tasks.ok());
  EXPECT_EQ(tasks_seen, *expected_tasks);
}

MMProblem Problem(int64_t i, int64_t k, int64_t j, int64_t bs = 10) {
  return MMProblem::DenseSquareBlocks(i * bs, k * bs, j * bs, bs);
}

class CoverageTest : public ::testing::TestWithParam<MethodKind> {};

std::unique_ptr<Method> MakeCoverageMethod(MethodKind kind,
                                           const MMProblem& problem) {
  switch (kind) {
    case MethodKind::kBmm:
      return std::make_unique<BmmMethod>();
    case MethodKind::kCpmm:
      return std::make_unique<CpmmMethod>();
    case MethodKind::kRmm:
      return std::make_unique<RmmMethod>();
    case MethodKind::kCuboid:
      return std::make_unique<CuboidMethod>(
          CuboidSpec{std::min<int64_t>(2, problem.I()),
                     std::min<int64_t>(3, problem.J()),
                     std::min<int64_t>(2, problem.K())});
    case MethodKind::kSumma:
      return std::make_unique<SummaMethod>();
    case MethodKind::kSumma25d:
      return std::make_unique<Summa25dMethod>(2);
    case MethodKind::kCrmm:
      return std::make_unique<CrmmMethod>(2);
  }
  return nullptr;
}

TEST_P(CoverageTest, AllVoxelsExactlyOnce) {
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  for (const MMProblem& problem :
       {Problem(4, 5, 6), Problem(5, 1, 3), Problem(1, 7, 1),
        Problem(3, 3, 3)}) {
    auto method = MakeCoverageMethod(GetParam(), problem);
    ASSERT_NE(method, nullptr);
    CheckExactCoverage(*method, problem, cluster);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CoverageTest,
                         ::testing::Values(MethodKind::kBmm, MethodKind::kCpmm,
                                           MethodKind::kRmm,
                                           MethodKind::kCuboid,
                                           MethodKind::kSumma,
                                           MethodKind::kSumma25d,
                                           MethodKind::kCrmm));

TEST(BmmTest, BroadcastsSmallerSide) {
  MMProblem p = Problem(4, 3, 2);
  p.b.sparsity = 0.01;  // B much smaller
  p.b.stored_dense = false;
  EXPECT_TRUE(BmmMethod::BroadcastsB(p));
  p.b.sparsity = 1.0;
  p.b.stored_dense = true;
  p.a.sparsity = 0.01;
  p.a.stored_dense = false;
  EXPECT_FALSE(BmmMethod::BroadcastsB(p));
}

TEST(BmmTest, TaskFlagsAndAggregation) {
  const ClusterConfig cluster = ClusterConfig::Local();
  MMProblem p = Problem(4, 3, 5);
  p.b.sparsity = 0.01;
  p.b.stored_dense = false;
  BmmMethod bmm;
  EXPECT_FALSE(bmm.NeedsAggregation(p));
  ASSERT_TRUE(bmm
                  .ForEachTask(p, cluster,
                               [&](const LocalTask& t) {
                                 EXPECT_TRUE(t.b_broadcast);
                                 EXPECT_FALSE(t.a_broadcast);
                                 EXPECT_TRUE(t.inputs_shared);
                                 // Each task spans all of J and K.
                                 EXPECT_EQ(t.voxels.j_count(), p.J());
                                 EXPECT_EQ(t.voxels.k_count(), p.K());
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(*bmm.NumTasks(p, cluster), p.I());
}

TEST(BmmTest, MirrorsWhenABroadcast) {
  const ClusterConfig cluster = ClusterConfig::Local();
  MMProblem p = Problem(4, 3, 5);
  p.a.sparsity = 0.001;
  p.a.stored_dense = false;  // A is tiny → broadcast A, partition B columns
  BmmMethod bmm;
  EXPECT_EQ(*bmm.NumTasks(p, cluster), p.J());
  ASSERT_TRUE(bmm
                  .ForEachTask(p, cluster,
                               [&](const LocalTask& t) {
                                 EXPECT_TRUE(t.a_broadcast);
                                 EXPECT_EQ(t.voxels.i_count(), p.I());
                                 return Status::OK();
                               })
                  .ok());
}

TEST(CpmmTest, OneKSlicePerTask) {
  const ClusterConfig cluster = ClusterConfig::Local();
  const MMProblem p = Problem(3, 7, 2);
  CpmmMethod cpmm;
  EXPECT_EQ(*cpmm.NumTasks(p, cluster), 7);
  EXPECT_TRUE(cpmm.NeedsAggregation(p));
  int64_t id = 0;
  ASSERT_TRUE(cpmm
                  .ForEachTask(p, cluster,
                               [&](const LocalTask& t) {
                                 EXPECT_EQ(t.voxels.k_count(), 1);
                                 EXPECT_EQ(t.voxels.i_count(), p.I());
                                 EXPECT_EQ(t.voxels.j_count(), p.J());
                                 EXPECT_EQ(t.id, id++);
                                 return Status::OK();
                               })
                  .ok());
}

TEST(CpmmTest, NoAggregationWhenKIsOne) {
  CpmmMethod cpmm;
  EXPECT_FALSE(cpmm.NeedsAggregation(Problem(5, 1, 5)));
}

TEST(RmmTest, DefaultTasksIsIJ) {
  const ClusterConfig cluster = ClusterConfig::Local();
  const MMProblem p = Problem(4, 5, 6);
  RmmMethod rmm;
  EXPECT_EQ(*rmm.NumTasks(p, cluster), 24);
}

TEST(RmmTest, TasksAreScatteredNotConsecutive) {
  // RMM tasks process non-consecutive voxels (Section 3.1): a task with
  // more than one voxel must not hold a contiguous linear range.
  const ClusterConfig cluster = ClusterConfig::Local();
  const MMProblem p = Problem(4, 6, 4);
  RmmMethod rmm(8);  // 96 voxels over 8 tasks → 12 voxels each
  ASSERT_TRUE(rmm
                  .ForEachTask(p, cluster,
                               [&](const LocalTask& t) {
                                 EXPECT_FALSE(t.voxels.is_box());
                                 EXPECT_FALSE(t.inputs_shared);
                                 EXPECT_FALSE(t.aggregate_local);
                                 EXPECT_EQ(t.voxels.size(), 12);
                                 return Status::OK();
                               })
                  .ok());
}

TEST(RmmTest, ScatterMultiplierCoprime) {
  for (int64_t t : {2, 3, 10, 24, 90, 97, 4900}) {
    EXPECT_EQ(std::gcd(RmmMethod::ScatterMultiplier(t), t), 1) << t;
  }
}

TEST(RmmTest, CannotUseCuboidGpuStreaming) {
  EXPECT_FALSE(RmmMethod().SupportsGpuStreaming());
  EXPECT_TRUE(CuboidMethod(CuboidSpec{1, 1, 1}).SupportsGpuStreaming());
}

TEST(CuboidTest, SpecValidation) {
  const ClusterConfig cluster = ClusterConfig::Local();
  const MMProblem p = Problem(4, 5, 6);
  EXPECT_FALSE(CuboidMethod(CuboidSpec{5, 1, 1}).NumTasks(p, cluster).ok());
  EXPECT_FALSE(CuboidMethod(CuboidSpec{1, 7, 1}).NumTasks(p, cluster).ok());
  EXPECT_FALSE(CuboidMethod(CuboidSpec{0, 1, 1}).NumTasks(p, cluster).ok());
  EXPECT_EQ(*CuboidMethod(CuboidSpec{4, 6, 5}).NumTasks(p, cluster), 120);
}

TEST(CuboidTest, AggregationOnlyWhenRGreaterThanOne) {
  const MMProblem p = Problem(4, 5, 6);
  EXPECT_FALSE(CuboidMethod(CuboidSpec{2, 3, 1}).NeedsAggregation(p));
  EXPECT_TRUE(CuboidMethod(CuboidSpec{2, 3, 2}).NeedsAggregation(p));
}

TEST(CuboidTest, BalancedSplit) {
  // 7 block-rows into 3 parts: 3+2+2.
  EXPECT_EQ(Split(7, 3, 0).end - Split(7, 3, 0).start, 3);
  EXPECT_EQ(Split(7, 3, 1).end - Split(7, 3, 1).start, 2);
  EXPECT_EQ(Split(7, 3, 2).end, 7);
  EXPECT_EQ(Split(7, 3, 2).start, 5);
}

TEST(SummaTest, GridIsMostSquareFactorization) {
  ClusterConfig cluster = ClusterConfig::Paper();  // 90 slots → 9×10
  const MMProblem p = Problem(100, 100, 100);
  SummaMethod summa;
  const CuboidSpec grid = summa.GridFor(p, cluster);
  EXPECT_EQ(grid.P * grid.Q, 90);
  EXPECT_EQ(grid.R, 1);
  EXPECT_LE(std::abs(grid.P - grid.Q), 1);
}

TEST(SummaTest, GridClampedToBlockGrid) {
  ClusterConfig cluster = ClusterConfig::Paper();
  const MMProblem p = Problem(2, 100, 3);  // tiny C grid
  const CuboidSpec grid = SummaMethod().GridFor(p, cluster);
  EXPECT_LE(grid.P, 2);
  EXPECT_LE(grid.Q, 3);
}

TEST(SummaTest, SyncStepsEqualsK) {
  const MMProblem p = Problem(4, 17, 4);
  EXPECT_EQ(SummaMethod().SyncSteps(p), 17);
  EXPECT_TRUE(SummaMethod().ResidentLocalMatrices());
}

TEST(CrmmTest, MergeFactorFitsMemory) {
  ClusterConfig cluster = ClusterConfig::Local();
  const MMProblem p = Problem(20, 20, 20);
  CrmmMethod crmm;
  const int64_t m = crmm.MergeFactor(p, cluster);
  EXPECT_GE(m, 1);
  // One logical voxel (3 m×m logical blocks) must fit θt.
  const double bytes = 3.0 * m * m * 10 * 10 * 8;
  EXPECT_LE(bytes, static_cast<double>(cluster.task_memory_bytes));
}

TEST(CrmmTest, ExtraShuffleForLogicalBlocks) {
  const MMProblem p = Problem(4, 4, 4);
  EXPECT_GT(CrmmMethod().ExtraRepartitionBytes(p), 0.0);
  EXPECT_EQ(CuboidMethod(CuboidSpec{1, 1, 1}).ExtraRepartitionBytes(p), 0.0);
}

TEST(MethodKindTest, Names) {
  EXPECT_STREQ(MethodKindName(MethodKind::kBmm), "BMM");
  EXPECT_STREQ(MethodKindName(MethodKind::kCuboid), "CuboidMM");
  EXPECT_EQ(CuboidMethod(CuboidSpec{2, 3, 4}).name(), "CuboidMM(2,3,4)");
}

TEST(MethodTest, InvalidProblemRejected) {
  const ClusterConfig cluster = ClusterConfig::Local();
  MMProblem bad;
  bad.a = MatrixDescriptor::Dense(100, 50, 10);
  bad.b = MatrixDescriptor::Dense(60, 100, 10);  // inner mismatch
  EXPECT_FALSE(BmmMethod().NumTasks(bad, cluster).ok());
  EXPECT_FALSE(CpmmMethod().NumTasks(bad, cluster).ok());
  EXPECT_FALSE(RmmMethod().NumTasks(bad, cluster).ok());
}

}  // namespace
}  // namespace distme::mm

namespace distme::mm {
namespace {

TEST(Summa25dTest, ReplicationTradesCommForMemory) {
  // The classic 2.5D result: more replication layers c → less repartition
  // communication for A/B relative to the plane size, more memory.
  const ClusterConfig cluster = ClusterConfig::Paper();  // 90 slots
  const MMProblem p = Problem(30, 30, 30, 1000);         // 30-block axes
  double prev_comm = -1;
  for (const int64_t c : {1, 2, 5}) {
    Summa25dMethod method(c);
    const CuboidSpec grid = method.GridFor(p, cluster);
    EXPECT_EQ(grid.R, c);
    EXPECT_LE(grid.P * grid.Q * grid.R, cluster.total_slots());
    auto cost = method.Analytic(p, cluster);
    ASSERT_TRUE(cost.ok());
    if (prev_comm >= 0) {
      // Repartition shrinks as the plane gets smaller (P+Q decreases).
      EXPECT_LT(cost->repartition_elements, prev_comm);
    }
    prev_comm = cost->repartition_elements;
  }
}

TEST(Summa25dTest, CEqualsOneMatchesSummaGrid) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  const MMProblem p = Problem(100, 100, 100, 1000);
  const CuboidSpec grid_25d = Summa25dMethod(1).GridFor(p, cluster);
  const CuboidSpec grid_summa = SummaMethod().GridFor(p, cluster);
  EXPECT_EQ(grid_25d.P, grid_summa.P);
  EXPECT_EQ(grid_25d.Q, grid_summa.Q);
  EXPECT_EQ(grid_25d.R, 1);
}

TEST(Summa25dTest, AutoReplicationRespectsMemory) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  const MMProblem p = Problem(30, 30, 30, 1000);
  Summa25dMethod method;  // auto c
  const CuboidSpec grid = method.GridFor(p, cluster);
  EXPECT_GE(grid.R, 1);
  // Replicated inputs must still fit the per-process budget.
  const double per_process =
      static_cast<double>(grid.R) *
      (p.a.StoredBytes() + p.b.StoredBytes() + p.C().StoredBytes()) /
      static_cast<double>(cluster.total_slots());
  EXPECT_LE(per_process, static_cast<double>(cluster.task_memory_bytes));
}

}  // namespace
}  // namespace distme::mm
