#include <gtest/gtest.h>

#include "core/gnmf.h"
#include "core/sim_query.h"
#include "systems/profiles.h"

namespace distme::core {
namespace {

mm::MatrixDescriptor DenseDesc(int64_t rows, int64_t cols) {
  return mm::MatrixDescriptor::Dense(rows, cols, 1000);
}

TEST(SimExprTest, DescriptorPropagation) {
  auto a = SimExpr::Leaf(DenseDesc(50000, 20000), "A");
  auto b = SimExpr::Leaf(DenseDesc(20000, 30000), "B");
  auto ab = SimExpr::Multiply(a, b);
  const mm::MatrixDescriptor d = ab->ResultDescriptor();
  EXPECT_EQ(d.shape.rows, 50000);
  EXPECT_EQ(d.shape.cols, 30000);
  EXPECT_DOUBLE_EQ(d.sparsity, 1.0);

  auto at = SimExpr::Transpose(a);
  EXPECT_EQ(at->ResultDescriptor().shape.rows, 20000);
  EXPECT_EQ(at->ResultDescriptor().shape.cols, 50000);
  // Double transpose folds.
  EXPECT_EQ(SimExpr::Transpose(at).get(), a.get());
}

TEST(SimExprTest, SparseProductDensityEstimate) {
  // Very sparse × dense over a short inner dimension stays sparse.
  auto v = SimExpr::Leaf(
      mm::MatrixDescriptor::Sparse(500000, 2000, 1000, 1e-5), "V");
  auto h = SimExpr::Leaf(DenseDesc(2000, 200), "H");
  const mm::MatrixDescriptor product =
      SimExpr::Multiply(v, h)->ResultDescriptor();
  EXPECT_LT(product.sparsity, 0.05);
  EXPECT_FALSE(product.stored_dense);
  // Long inner dimension saturates to dense.
  auto big = SimExpr::Leaf(
      mm::MatrixDescriptor::Sparse(10000, 5000000, 1000, 0.01), "S");
  auto d = SimExpr::Leaf(DenseDesc(5000000, 10000), "D");
  EXPECT_DOUBLE_EQ(SimExpr::Multiply(big, d)->ResultDescriptor().sparsity,
                   1.0);
}

TEST(SimQueryTest, ChainExecutesEveryMultiplication) {
  // (A × B) × C at paper scale.
  auto a = SimExpr::Leaf(DenseDesc(30000, 30000), "A");
  auto b = SimExpr::Leaf(DenseDesc(30000, 30000), "B");
  auto c = SimExpr::Leaf(DenseDesc(30000, 2000), "C");
  auto query = SimExpr::Multiply(SimExpr::Multiply(a, b), c);
  DistmePlanner planner;
  SimQueryOptions options;
  options.cluster.timeout_seconds = 1e9;
  auto report = SimulateQuery(planner, query, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->outcome.ok()) << report->outcome;
  EXPECT_EQ(report->multiplications, 2);
  EXPECT_GT(report->total_seconds, 0);
  EXPECT_EQ(report->operators.size(), 2u);
}

TEST(SimQueryTest, SharedSubtreeChargedOnce) {
  // Aᵀ feeds two products; the query charges one transpose and reuses it.
  auto a = SimExpr::Leaf(DenseDesc(40000, 2000), "A");
  auto at = SimExpr::Transpose(a);
  auto gram = SimExpr::Multiply(at, a);          // AᵀA
  auto proj = SimExpr::Multiply(at, SimExpr::Leaf(DenseDesc(40000, 1000), "B"));
  auto query = SimExpr::ElementWise(blas::ElementWiseOp::kAdd,
                                    SimExpr::Multiply(gram, gram), proj);
  // Shapes differ for the add, but the simulator only costs it; build a
  // consistent one instead:
  auto query2 = SimExpr::Multiply(gram, SimExpr::Multiply(gram, gram));
  DistmePlanner planner;
  SimQueryOptions options;
  options.cluster.timeout_seconds = 1e9;
  auto report = SimulateQuery(planner, query2, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->outcome.ok());
  // gram appears three times, evaluated once → at least two reuses.
  EXPECT_GE(report->reused_nodes, 2);
  // Multiplications: AᵀA once, gram×gram, gram×(gram×gram) → 3 total.
  EXPECT_EQ(report->multiplications, 3);
}

TEST(SimQueryTest, DependencyAwarenessReducesShuffle) {
  auto v = SimExpr::Leaf(
      mm::MatrixDescriptor::Sparse(480189, 17770, 1000, 0.0118), "V");
  auto w = SimExpr::Leaf(DenseDesc(480189, 200), "W");
  auto wt = SimExpr::Transpose(w);
  auto query = SimExpr::Multiply(wt, v);  // WᵀV
  DistmePlanner planner;
  SimQueryOptions aware;
  aware.dependency_aware = true;
  SimQueryOptions naive;
  naive.dependency_aware = false;
  auto fast = SimulateQuery(planner, query, aware);
  auto slow = SimulateQuery(planner, query, naive);
  ASSERT_TRUE(fast.ok() && slow.ok());
  ASSERT_TRUE(fast->outcome.ok() && slow->outcome.ok());
  EXPECT_LT(fast->total_shuffle_bytes, slow->total_shuffle_bytes);
  EXPECT_LE(fast->total_seconds, slow->total_seconds);
}

TEST(SimQueryTest, PlannerInfeasibilityPropagates) {
  // A product too large for any (P,Q,R) under a tiny memory budget.
  auto a = SimExpr::Leaf(DenseDesc(100000, 1000), "A");
  auto b = SimExpr::Leaf(DenseDesc(1000, 100000), "B");
  DistmePlanner planner;
  SimQueryOptions options;
  options.cluster.task_memory_bytes = 8 * kMiB;  // one block won't fit
  auto report = SimulateQuery(planner, SimExpr::Multiply(a, b), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->outcome.IsOutOfMemory()) << report->outcome;
}

TEST(SimQueryTest, GnmfIterationMatchesDedicatedSimulator) {
  // One GNMF H-update expressed as a query lands in the same ballpark as
  // the dedicated GNMF simulator's per-iteration cost (they share the same
  // multiplication set for the H half).
  const RatingDataset d = Netflix();
  const auto v_desc = mm::MatrixDescriptor::Sparse(
      d.users, d.items, 1000,
      static_cast<double>(d.ratings) /
          (static_cast<double>(d.users) * d.items));
  auto v = SimExpr::Leaf(v_desc, "V");
  auto w = SimExpr::Leaf(DenseDesc(d.users, 200), "W");
  auto h = SimExpr::Leaf(DenseDesc(200, d.items), "H");
  auto wt = SimExpr::Transpose(w);
  auto update = SimExpr::ElementWise(
      blas::ElementWiseOp::kDiv,
      SimExpr::ElementWise(blas::ElementWiseOp::kMul, h,
                           SimExpr::Multiply(wt, v)),
      SimExpr::Multiply(SimExpr::Multiply(wt, w), h));
  DistmePlanner planner;
  SimQueryOptions options;
  auto report = SimulateQuery(planner, update, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->outcome.ok()) << report->outcome;
  EXPECT_EQ(report->multiplications, 3);

  core::GnmfSimOptions gnmf;
  gnmf.v = v_desc;
  gnmf.factor_dim = 200;
  gnmf.iterations = 1;
  gnmf.dependency_aware = true;
  auto dedicated = SimulateGnmf(planner, gnmf);
  ASSERT_TRUE(dedicated.ok());
  // The H half is roughly half an iteration: same order of magnitude.
  EXPECT_LT(report->total_seconds, dedicated->total_seconds * 1.5);
  EXPECT_GT(report->total_seconds, dedicated->total_seconds * 0.05);
}

}  // namespace
}  // namespace distme::core
