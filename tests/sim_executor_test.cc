#include <gtest/gtest.h>

#include <algorithm>

#include "engine/sim_executor.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme::engine {
namespace {

using mm::MMProblem;

MMProblem DenseProblem(int64_t i, int64_t k, int64_t j, double sparsity = 1.0,
                       int64_t bs = 1000) {
  MMProblem p = MMProblem::DenseSquareBlocks(i, k, j, bs);
  p.a.sparsity = sparsity;
  p.b.sparsity = sparsity;
  return p;
}

mm::CuboidMethod OptimalCuboid(const MMProblem& p,
                               const ClusterConfig& cluster) {
  auto opt = mm::OptimizeCuboid(p, cluster);
  EXPECT_TRUE(opt.ok());
  return mm::CuboidMethod(opt->spec);
}

TEST(ProductDensityTest, Estimates) {
  EXPECT_DOUBLE_EQ(EstimateProductDensity(0.0, 1.0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(EstimateProductDensity(1.0, 1.0, 1000), 1.0);
  // Very sparse: ≈ sa·sb·inner.
  EXPECT_NEAR(EstimateProductDensity(1e-6, 1.0, 1000), 1e-3, 1e-5);
  // Half-dense inputs over a long inner dimension saturate to dense.
  EXPECT_NEAR(EstimateProductDensity(0.5, 0.5, 1000), 1.0, 1e-9);
}

TEST(SimExecutorTest, CuboidBeatsOthersOnGeneralMatrices) {
  // The Figure 6(a) regime: 70K×70K×70K, sparsity 0.5, GPU on.
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  const MMProblem p = DenseProblem(70000, 70000, 70000, 0.5);
  SimOptions gpu;
  gpu.mode = ComputeMode::kGpuStreaming;

  auto cuboid = executor.Run(p, OptimalCuboid(p, cluster), gpu);
  auto cpmm = executor.Run(p, mm::CpmmMethod(), gpu);
  auto rmm = executor.Run(p, mm::RmmMethod(), gpu);
  ASSERT_TRUE(cuboid.ok() && cpmm.ok() && rmm.ok());
  ASSERT_TRUE(cuboid->outcome.ok()) << cuboid->outcome;
  ASSERT_TRUE(cpmm->outcome.ok()) << cpmm->outcome;
  ASSERT_TRUE(rmm->outcome.ok()) << rmm->outcome;

  // CuboidMM wins on elapsed time and communication (Figure 6(a)/(d)).
  EXPECT_LT(cuboid->elapsed_seconds, cpmm->elapsed_seconds);
  EXPECT_LT(cuboid->elapsed_seconds, rmm->elapsed_seconds);
  EXPECT_LT(cuboid->total_shuffle_bytes(), cpmm->total_shuffle_bytes());
  EXPECT_LT(cuboid->total_shuffle_bytes(), rmm->total_shuffle_bytes());
  // And the paper's magnitude: CuboidMM ~200s, RMM within a few ×.
  EXPECT_GT(cuboid->elapsed_seconds, 50);
  EXPECT_LT(cuboid->elapsed_seconds, 500);
  EXPECT_GT(rmm->elapsed_seconds / cuboid->elapsed_seconds, 2.0);
}

TEST(SimExecutorTest, BmmOomBeyond80K) {
  // Figure 6(a): BMM runs at 70K but O.O.M.s for N > 80K (the broadcast
  // copy of B plus task working sets no longer fit node memory).
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  SimOptions gpu;
  gpu.mode = ComputeMode::kGpuStreaming;
  auto at_70k =
      executor.Run(DenseProblem(70000, 70000, 70000, 0.5), mm::BmmMethod(),
                   gpu);
  ASSERT_TRUE(at_70k.ok());
  EXPECT_TRUE(at_70k->outcome.ok()) << at_70k->outcome;
  auto at_90k =
      executor.Run(DenseProblem(90000, 90000, 90000, 0.5), mm::BmmMethod(),
                   gpu);
  ASSERT_TRUE(at_90k.ok());
  EXPECT_TRUE(at_90k->outcome.IsOutOfMemory());
}

TEST(SimExecutorTest, CpmmOomOnTwoLargeDimensions) {
  // Figure 6(c): CPMM fails with O.O.M. at 500K×1K×500K — one task (T=K=1)
  // must hold both inputs.
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  SimOptions gpu;
  gpu.mode = ComputeMode::kGpuStreaming;
  auto at_250k = executor.Run(DenseProblem(250000, 1000, 250000, 0.5),
                              mm::CpmmMethod(), gpu);
  ASSERT_TRUE(at_250k.ok());
  EXPECT_TRUE(at_250k->outcome.ok()) << at_250k->outcome;
  auto at_500k = executor.Run(DenseProblem(500000, 1000, 500000, 0.5),
                              mm::CpmmMethod(), gpu);
  ASSERT_TRUE(at_500k.ok());
  EXPECT_TRUE(at_500k->outcome.IsOutOfMemory());
}

TEST(SimExecutorTest, RmmTimesOutOnTwoLargeDimensions) {
  // Figure 6(c): RMM exceeds the 4000 s limit at 750K×1K×750K.
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  SimOptions gpu;
  gpu.mode = ComputeMode::kGpuStreaming;
  auto report = executor.Run(DenseProblem(750000, 1000, 750000, 0.5),
                             mm::RmmMethod(), gpu);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->outcome.IsTimeout()) << report->outcome;
  // CuboidMM still completes there (only CuboidMM can, per the paper).
  const MMProblem p = DenseProblem(750000, 1000, 750000, 0.5);
  auto cuboid = executor.Run(p, OptimalCuboid(p, cluster), gpu);
  ASSERT_TRUE(cuboid.ok());
  EXPECT_TRUE(cuboid->outcome.ok()) << cuboid->outcome;
}

TEST(SimExecutorTest, ExceedsDiskOnHugeReplication) {
  // Figure 7(c): RMM's J·|A| replication at N×1K×1M explodes past the
  // cluster's 36 TB of disk at N = 1.5M.
  // Figure 7(c) is measured in minutes; relax the Figure 6 time limit.
  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.timeout_seconds = 1e9;
  SimExecutor executor(cluster);
  auto at_1m = executor.Run(DenseProblem(1000000, 1000, 1000000),
                            mm::RmmMethod(), {});
  ASSERT_TRUE(at_1m.ok());
  EXPECT_TRUE(at_1m->outcome.ok()) << at_1m->outcome;
  auto at_1p5m = executor.Run(DenseProblem(1500000, 1000, 1000000),
                              mm::RmmMethod(), {});
  ASSERT_TRUE(at_1p5m.ok());
  EXPECT_TRUE(at_1p5m->outcome.IsExceedsDiskCapacity()) << at_1p5m->outcome;
}

TEST(SimExecutorTest, CommunicationMatchesAnalyticModel) {
  // The per-task accounting must reproduce the Table 2 closed forms.
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  const MMProblem p = DenseProblem(20000, 20000, 20000);

  // CuboidMM (P,Q,R) = (4,5,2): repartition = Q·|A| + P·|B| bytes.
  mm::CuboidMethod cuboid(mm::CuboidSpec{4, 5, 2});
  auto report = executor.Run(p, cuboid, {});
  ASSERT_TRUE(report.ok());
  const double a_bytes = p.a.StoredBytes();
  EXPECT_NEAR(report->repartition_bytes, 5 * a_bytes + 4 * a_bytes,
              0.01 * a_bytes);
  // Aggregation = R·|C| bytes.
  EXPECT_NEAR(report->aggregation_bytes, 2 * p.C().StoredBytes(),
              0.01 * a_bytes);

  // RMM: J·|A| + I·|B| and K·|C|.
  auto rmm_report = executor.Run(p, mm::RmmMethod(), {});
  ASSERT_TRUE(rmm_report.ok());
  EXPECT_NEAR(rmm_report->repartition_bytes, 20 * a_bytes + 20 * a_bytes,
              0.01 * 40 * a_bytes);
  EXPECT_NEAR(rmm_report->aggregation_bytes, 20 * p.C().StoredBytes(),
              0.01 * 20 * a_bytes);
}

TEST(SimExecutorTest, FetchOverlapHidesRepartitionNotBytes) {
  // The prefetch-pipeline model: fetch_overlap hides part of the
  // repartition step behind the multiply waves, but moves the same bytes.
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  const MMProblem p = DenseProblem(20000, 20000, 20000);

  auto serial = executor.Run(p, mm::RmmMethod(), {});
  ASSERT_TRUE(serial.ok());
  SimOptions pipelined;
  pipelined.fetch_overlap = 0.6;
  auto overlapped = executor.Run(p, mm::RmmMethod(), pipelined);
  ASSERT_TRUE(overlapped.ok());

  // Bytes are identical — the pipeline moves the same blocks, earlier.
  EXPECT_DOUBLE_EQ(overlapped->repartition_bytes, serial->repartition_bytes);
  EXPECT_DOUBLE_EQ(overlapped->aggregation_bytes, serial->aggregation_bytes);
  // The visible repartition time shrinks by exactly the hidden share
  // (multiply dwarfs repartition at this scale, so nothing is clamped).
  const double hidden =
      std::min(serial->steps.repartition_seconds * 0.6,
               serial->steps.multiply_seconds);
  EXPECT_NEAR(overlapped->steps.repartition_seconds,
              serial->steps.repartition_seconds - hidden, 1e-9);
  EXPECT_DOUBLE_EQ(overlapped->steps.multiply_seconds,
                   serial->steps.multiply_seconds);
  EXPECT_LT(overlapped->elapsed_seconds, serial->elapsed_seconds);

  // Full overlap can never hide more than the multiply step provides
  // cover for — repartition time floors at the un-hidable remainder.
  SimOptions full;
  full.fetch_overlap = 1.0;
  auto fully = executor.Run(p, mm::RmmMethod(), full);
  ASSERT_TRUE(fully.ok());
  EXPECT_GE(fully->steps.repartition_seconds, 0.0);
}

TEST(SimExecutorTest, GpuFasterThanCpuOnDense) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  const MMProblem p = DenseProblem(40000, 40000, 40000);
  const mm::CuboidMethod method = OptimalCuboid(p, cluster);
  auto cpu = executor.Run(p, method, {});
  SimOptions gpu;
  gpu.mode = ComputeMode::kGpuStreaming;
  auto accelerated = executor.Run(p, method, gpu);
  ASSERT_TRUE(cpu.ok() && accelerated.ok());
  ASSERT_TRUE(cpu->outcome.ok() && accelerated->outcome.ok());
  // Figure 7(a): DistME(G) improves on DistME(C) by several ×.
  EXPECT_GT(cpu->elapsed_seconds / accelerated->elapsed_seconds, 1.5);
  EXPECT_GT(accelerated->gpu_utilization, 0.5);
  EXPECT_GT(accelerated->pcie_bytes, 0.0);
}

TEST(SimExecutorTest, StreamingBeatsBlockLevelGpu) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  const MMProblem p = DenseProblem(40000, 40000, 40000);
  const mm::CuboidMethod method = OptimalCuboid(p, cluster);
  SimOptions streaming;
  streaming.mode = ComputeMode::kGpuStreaming;
  SimOptions block;
  block.mode = ComputeMode::kGpuBlock;
  auto fast = executor.Run(p, method, streaming);
  auto slow = executor.Run(p, method, block);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_LT(fast->steps.multiply_seconds, slow->steps.multiply_seconds);
  EXPECT_LT(fast->pcie_bytes, slow->pcie_bytes);
  EXPECT_GT(fast->gpu_utilization, slow->gpu_utilization);
}

TEST(SimExecutorTest, RmmDowngradesToBlockLevelGpu) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  SimOptions gpu;
  gpu.mode = ComputeMode::kGpuStreaming;
  auto report =
      executor.Run(DenseProblem(20000, 20000, 20000), mm::RmmMethod(), gpu);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mode, ComputeMode::kGpuBlock);
}

TEST(SimExecutorTest, MaterializedMapOutputsOom) {
  // MatFast's naive CPMM: the whole |C| working set per task.
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  const MMProblem p = DenseProblem(40000, 40000, 40000);
  SimOptions naive;
  naive.materialize_map_outputs = true;
  auto report = executor.Run(p, mm::CpmmMethod(), naive);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->outcome.IsOutOfMemory());
  // Spill-tolerant execution (SystemML-style) survives the same problem.
  auto spilling = executor.Run(p, mm::CpmmMethod(), {});
  ASSERT_TRUE(spilling.ok());
  EXPECT_TRUE(spilling->outcome.ok()) << spilling->outcome;
}

TEST(SimExecutorTest, ResidentArraysOomForHpc) {
  // Table 5: ScaLAPACK/SciDB O.O.M. at 500K×1K×500K because whole local
  // matrices live as single arrays.
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  auto report = executor.Run(DenseProblem(500000, 1000, 500000),
                             mm::SummaMethod(), {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->outcome.IsOutOfMemory());
  // DistME(C) survives (57 m in Table 5) — needs the relaxed time limit the
  // paper evidently used for Table 5.
  ClusterConfig patient = cluster;
  patient.timeout_seconds = 7200;
  SimExecutor patient_executor(patient);
  const MMProblem p = DenseProblem(500000, 1000, 500000);
  auto cuboid = patient_executor.Run(p, OptimalCuboid(p, patient), {});
  ASSERT_TRUE(cuboid.ok());
  EXPECT_TRUE(cuboid->outcome.ok()) << cuboid->outcome;
}

TEST(SimExecutorTest, SparseProblemsCheaper) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  SimExecutor executor(cluster);
  MMProblem dense = DenseProblem(500000, 1000000, 1000);
  MMProblem sparse = dense;
  sparse.a.sparsity = 1e-4;
  sparse.a.stored_dense = false;
  auto dense_report = executor.Run(dense, mm::CpmmMethod(), {});
  auto sparse_report = executor.Run(sparse, mm::CpmmMethod(), {});
  ASSERT_TRUE(dense_report.ok() && sparse_report.ok());
  EXPECT_LT(sparse_report->repartition_bytes, dense_report->repartition_bytes);
  EXPECT_LT(sparse_report->steps.multiply_seconds,
            dense_report->steps.multiply_seconds);
}

TEST(SimExecutorTest, InvalidProblemIsError) {
  SimExecutor executor(ClusterConfig::Paper());
  mm::MMProblem bad;
  bad.a = mm::MatrixDescriptor::Dense(100, 50, 10);
  bad.b = mm::MatrixDescriptor::Dense(60, 100, 10);
  EXPECT_FALSE(executor.Run(bad, mm::BmmMethod(), {}).ok());
}

}  // namespace
}  // namespace distme::engine
