#include <gtest/gtest.h>

#include "gpu/device.h"

namespace distme::gpu {
namespace {

GpuSpec SmallGpu() {
  GpuSpec spec;
  spec.memory_bytes = 1024;
  return spec;
}

TEST(DeviceTest, MemoryAccounting) {
  Device device(SmallGpu(), HardwareModel{});
  auto a = device.Allocate(512, "a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(device.memory_used(), 512);
  auto b = device.Allocate(512, "b");
  ASSERT_TRUE(b.ok());
  auto c = device.Allocate(1, "c");
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsOutOfMemory());
  ASSERT_TRUE(device.Free(*a).ok());
  EXPECT_EQ(device.memory_used(), 512);
  EXPECT_TRUE(device.Allocate(256, "d").ok());
  EXPECT_EQ(device.stats().peak_memory_bytes, 1024);
}

TEST(DeviceTest, FreeUnknownBufferFails) {
  Device device(SmallGpu(), HardwareModel{});
  EXPECT_FALSE(device.Free(123).ok());
}

TEST(DeviceTest, UnknownStreamRejected) {
  Device device(SmallGpu(), HardwareModel{});
  EXPECT_FALSE(device.EnqueueH2D(0, 100).ok());
  EXPECT_FALSE(device.EnqueueKernel(5, 100).ok());
}

TEST(DeviceTest, StreamOpsAreFifo) {
  HardwareModel hw;
  hw.pcie_bandwidth = 1000.0;  // 1000 B/s → easy arithmetic
  hw.gpu_gemm_flops = 1000.0;
  hw.kernel_launch_overhead = 0.0;
  Device device(GpuSpec{}, hw);
  const StreamId s = device.CreateStream();
  ASSERT_TRUE(device.EnqueueH2D(s, 1000).ok());       // [0, 1]
  ASSERT_TRUE(device.EnqueueKernel(s, 2000).ok());    // [1, 3]
  ASSERT_TRUE(device.EnqueueD2H(s, 500).ok());        // [3, 3.5]
  EXPECT_NEAR(device.Synchronize(), 3.5, 1e-9);
}

TEST(DeviceTest, H2DCopiesSerializeAcrossStreams) {
  // Section 4.3: "H2D copies of these streams cannot overlap with each
  // other since the current GPU architecture does not support it."
  HardwareModel hw;
  hw.pcie_bandwidth = 1000.0;
  hw.kernel_launch_overhead = 0.0;
  Device device(GpuSpec{}, hw);
  const StreamId s1 = device.CreateStream();
  const StreamId s2 = device.CreateStream();
  ASSERT_TRUE(device.EnqueueH2D(s1, 1000).ok());  // engine busy [0, 1]
  ASSERT_TRUE(device.EnqueueH2D(s2, 1000).ok());  // must wait → [1, 2]
  EXPECT_NEAR(device.Synchronize(), 2.0, 1e-9);
  EXPECT_NEAR(device.stats().h2d_seconds, 2.0, 1e-9);
}

TEST(DeviceTest, KernelsOverlapCopiesOnOtherStreams) {
  HardwareModel hw;
  hw.pcie_bandwidth = 1000.0;
  hw.gpu_gemm_flops = 1000.0;
  hw.kernel_launch_overhead = 0.0;
  Device device(GpuSpec{}, hw);
  const StreamId s1 = device.CreateStream();
  const StreamId s2 = device.CreateStream();
  // Stream 1: copy [0,1] then kernel [1,2]. Stream 2's copy waits for the
  // H2D engine [1,2] and its kernel runs [2,3] — overlapping s1's kernel
  // window would require the kernel engine, which is then free.
  ASSERT_TRUE(device.EnqueueH2D(s1, 1000).ok());
  ASSERT_TRUE(device.EnqueueKernel(s1, 1000).ok());
  ASSERT_TRUE(device.EnqueueH2D(s2, 1000).ok());
  ASSERT_TRUE(device.EnqueueKernel(s2, 1000).ok());
  EXPECT_NEAR(device.Synchronize(), 3.0, 1e-9);
}

TEST(DeviceTest, KernelBodyExecutes) {
  Device device(GpuSpec{}, HardwareModel{});
  const StreamId s = device.CreateStream();
  int calls = 0;
  ASSERT_TRUE(device.EnqueueKernel(s, 100, [&]() { ++calls; }).ok());
  ASSERT_TRUE(device.EnqueueKernel(s, 100, [&]() { ++calls; }).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(device.stats().kernel_calls, 2);
}

TEST(DeviceTest, SparseKernelUsesSparseThroughput) {
  HardwareModel hw;
  hw.gpu_gemm_flops = 1000.0;
  hw.gpu_sparse_flops = 100.0;
  hw.kernel_launch_overhead = 0.0;
  Device device(GpuSpec{}, hw);
  const StreamId s = device.CreateStream();
  ASSERT_TRUE(device.EnqueueKernel(s, 1000, nullptr, /*sparse=*/false).ok());
  const double dense_time = device.Synchronize();
  device.ResetTimeline();
  const StreamId s2 = device.CreateStream();
  ASSERT_TRUE(device.EnqueueKernel(s2, 1000, nullptr, /*sparse=*/true).ok());
  EXPECT_GT(device.Synchronize(), dense_time * 5);
}

TEST(DeviceTest, StatsAccumulateBytes) {
  Device device(GpuSpec{}, HardwareModel{});
  const StreamId s = device.CreateStream();
  ASSERT_TRUE(device.EnqueueH2D(s, 100).ok());
  ASSERT_TRUE(device.EnqueueH2D(s, 200).ok());
  ASSERT_TRUE(device.EnqueueD2H(s, 50).ok());
  EXPECT_EQ(device.stats().h2d_bytes, 300);
  EXPECT_EQ(device.stats().d2h_bytes, 50);
  EXPECT_EQ(device.stats().h2d_copies, 2);
  EXPECT_EQ(device.stats().d2h_copies, 1);
}

TEST(DeviceTest, ResetTimelineClearsClockKeepsMemory) {
  Device device(SmallGpu(), HardwareModel{});
  ASSERT_TRUE(device.Allocate(100, "x").ok());
  const StreamId s = device.CreateStream();
  ASSERT_TRUE(device.EnqueueH2D(s, 1000000).ok());
  EXPECT_GT(device.Synchronize(), 0.0);
  device.ResetTimeline();
  EXPECT_EQ(device.Synchronize(), 0.0);
  EXPECT_EQ(device.memory_used(), 100);  // allocations survive
}

}  // namespace
}  // namespace distme::gpu
