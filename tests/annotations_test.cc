// Proves the DISTME_* thread-safety macros are exact no-ops under
// non-clang compilers (and benign under clang): annotated types must be
// layout-identical to unannotated twins, annotations must not perturb
// overload resolution or member-pointer identity, and the documentation-only
// macros (LOCKFREE/UNSHARED/SHARDED_BY) must expand to nothing everywhere.
//
// The point: we annotate every mutex-owning class in src/, so a macro layer
// that silently changed ABI or semantics on the production compiler would be
// a tree-wide regression. This test is the contract the sweep relies on.

#include <atomic>
#include <cstddef>
#include <gtest/gtest.h>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace distme {
namespace {

// ---------------------------------------------------------------------------
// Layout parity: annotated struct vs byte-for-byte unannotated twin.
// ---------------------------------------------------------------------------

struct PlainTwin {
  std::mutex mutex_;
  int counter_ = 0;
  double gauge_ = 0.0;
  std::vector<int> items_;
  std::atomic<int> ticks_{0};
  void* handle_ = nullptr;
};

struct AnnotatedTwin {
  std::mutex mutex_;
  int counter_ DISTME_GUARDED_BY(mutex_) = 0;
  double gauge_ DISTME_GUARDED_BY(mutex_) = 0.0;
  std::vector<int> items_ DISTME_GUARDED_BY(mutex_);
  std::atomic<int> ticks_ DISTME_LOCKFREE("relaxed counter");
  void* handle_ DISTME_UNSHARED("owner-thread only") = nullptr;
};

static_assert(sizeof(PlainTwin) == sizeof(AnnotatedTwin),
              "annotations must not change object size");
static_assert(alignof(PlainTwin) == alignof(AnnotatedTwin),
              "annotations must not change alignment");
static_assert(offsetof(PlainTwin, counter_) ==
                  offsetof(AnnotatedTwin, counter_),
              "annotations must not move members");
static_assert(offsetof(PlainTwin, gauge_) == offsetof(AnnotatedTwin, gauge_),
              "annotations must not move members");
static_assert(offsetof(PlainTwin, ticks_) == offsetof(AnnotatedTwin, ticks_),
              "annotations must not move members");
static_assert(offsetof(PlainTwin, handle_) ==
                  offsetof(AnnotatedTwin, handle_),
              "annotations must not move members");

// Member types are untouched: GUARDED_BY decorates the declaration, it does
// not wrap the type.
static_assert(
    std::is_same_v<decltype(AnnotatedTwin::counter_), int>,
    "GUARDED_BY must not change the declared type");
static_assert(
    std::is_same_v<decltype(AnnotatedTwin::items_), std::vector<int>>,
    "GUARDED_BY must not change the declared type");
static_assert(
    std::is_same_v<decltype(AnnotatedTwin::ticks_), std::atomic<int>>,
    "LOCKFREE must not change the declared type");

// ---------------------------------------------------------------------------
// Documentation-only macros expand to nothing on every compiler, including
// clang: they may appear after brace-or-equals initializers where a real
// attribute would be a syntax error.
// ---------------------------------------------------------------------------

#define DISTME_TEST_STR_INNER(x) #x
#define DISTME_TEST_STR(x) DISTME_TEST_STR_INNER(x)

static_assert(sizeof(DISTME_TEST_STR(DISTME_LOCKFREE("why"))) == 1,
              "DISTME_LOCKFREE must expand to nothing on all compilers");
static_assert(sizeof(DISTME_TEST_STR(DISTME_UNSHARED("why"))) == 1,
              "DISTME_UNSHARED must expand to nothing on all compilers");
static_assert(sizeof(DISTME_TEST_STR(DISTME_SHARDED_BY(mutexes_))) == 1,
              "DISTME_SHARDED_BY must expand to nothing on all compilers");

#if !defined(__clang__)
// Under gcc (the production compiler here) the attribute macros are empty
// too — stringification proves total erasure, not just benign expansion.
static_assert(sizeof(DISTME_TEST_STR(DISTME_GUARDED_BY(mutex_))) == 1,
              "DISTME_GUARDED_BY must be an exact no-op under gcc");
static_assert(sizeof(DISTME_TEST_STR(DISTME_REQUIRES(mutex_))) == 1,
              "DISTME_REQUIRES must be an exact no-op under gcc");
static_assert(sizeof(DISTME_TEST_STR(DISTME_EXCLUDES(mutex_))) == 1,
              "DISTME_EXCLUDES must be an exact no-op under gcc");
static_assert(sizeof(DISTME_TEST_STR(DISTME_ACQUIRE(mutex_))) == 1,
              "DISTME_ACQUIRE must be an exact no-op under gcc");
static_assert(sizeof(DISTME_TEST_STR(DISTME_RELEASE(mutex_))) == 1,
              "DISTME_RELEASE must be an exact no-op under gcc");
#endif

#undef DISTME_TEST_STR
#undef DISTME_TEST_STR_INNER

// ---------------------------------------------------------------------------
// Overload resolution: a REQUIRES-annotated function is the same function.
// ---------------------------------------------------------------------------

class Resolver {
 public:
  int Pick(int v) DISTME_REQUIRES(mutex_) { return v; }
  int Pick(double v) { return static_cast<int>(v) + 100; }

  std::mutex mutex_;
};

TEST(AnnotationsTest, AnnotatedOverloadResolvesIdentically) {
  Resolver r;
  std::lock_guard<std::mutex> lock(r.mutex_);
  EXPECT_EQ(r.Pick(7), 7);        // int overload, REQUIRES-annotated
  EXPECT_EQ(r.Pick(7.0), 107);    // double overload, unannotated
}

// ---------------------------------------------------------------------------
// A CAPABILITY/ACQUIRE/RELEASE-annotated lock wrapper compiles and behaves
// like the raw mutex it wraps (this is the shape DESIGN.md §4.8 recommends
// for new lock types).
// ---------------------------------------------------------------------------

class DISTME_CAPABILITY("mutex") AnnotatedLock {
 public:
  void Acquire() DISTME_ACQUIRE() { mu_.lock(); }
  void Release() DISTME_RELEASE() { mu_.unlock(); }
  bool TryAcquire() DISTME_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

TEST(AnnotationsTest, AnnotatedLockWrapperWorks) {
  AnnotatedLock lock;
  lock.Acquire();
  EXPECT_FALSE(lock.TryAcquire());  // already held
  lock.Release();
  EXPECT_TRUE(lock.TryAcquire());
  lock.Release();
}

// ---------------------------------------------------------------------------
// Runtime parity: annotated and unannotated twins behave identically,
// including under death. EXPECT_DEATH on both proves the annotation did not
// alter control flow or the abort path.
// ---------------------------------------------------------------------------

struct PlainGuard {
  std::mutex mutex_;
  int value_ = 0;
  [[noreturn]] void Die() {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ = 1;
    std::abort();
  }
};

struct AnnotatedGuard {
  std::mutex mutex_;
  int value_ DISTME_GUARDED_BY(mutex_) = 0;
  [[noreturn]] void Die() {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ = 1;
    std::abort();
  }
};

TEST(AnnotationsDeathTest, AnnotatedAbortMatchesUnannotated) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlainGuard plain;
  AnnotatedGuard annotated;
  EXPECT_DEATH(plain.Die(), "");
  EXPECT_DEATH(annotated.Die(), "");
}

TEST(AnnotationsTest, TwinsBehaveIdentically) {
  PlainTwin plain;
  AnnotatedTwin annotated;
  {
    std::lock_guard<std::mutex> lock_p(plain.mutex_);
    std::lock_guard<std::mutex> lock_a(annotated.mutex_);
    plain.counter_ = 41;
    annotated.counter_ = 41;
    plain.items_.push_back(3);
    annotated.items_.push_back(3);
  }
  plain.ticks_.fetch_add(1, std::memory_order_relaxed);
  annotated.ticks_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock_p(plain.mutex_);
  std::lock_guard<std::mutex> lock_a(annotated.mutex_);
  EXPECT_EQ(plain.counter_, annotated.counter_);
  EXPECT_EQ(plain.items_, annotated.items_);
  EXPECT_EQ(plain.ticks_.load(std::memory_order_relaxed),
            annotated.ticks_.load(std::memory_order_relaxed));
}

}  // namespace
}  // namespace distme
