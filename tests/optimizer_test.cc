#include <gtest/gtest.h>

#include <tuple>

#include "mm/optimizer.h"

namespace distme::mm {
namespace {

MMProblem DenseProblem(int64_t i, int64_t k, int64_t j, int64_t bs,
                       double sparsity = 1.0) {
  MMProblem p = MMProblem::DenseSquareBlocks(i, k, j, bs);
  p.a.sparsity = sparsity;
  p.b.sparsity = sparsity;
  return p;
}

TEST(OptimizerTest, FeasibleAndCostEqualsBruteForce) {
  ClusterConfig cluster = ClusterConfig::Paper();
  // A manageable brute-force size.
  for (const auto& [i, k, j] :
       {std::tuple<int64_t, int64_t, int64_t>{30000, 30000, 30000},
        {10000, 80000, 10000},
        {50000, 2000, 40000}}) {
    const MMProblem p = DenseProblem(i, k, j, 1000, 0.5);
    auto fast = OptimizeCuboid(p, cluster);
    auto brute = OptimizeCuboidBruteForce(p, cluster);
    ASSERT_TRUE(fast.ok()) << i << "x" << k << "x" << j;
    ASSERT_TRUE(brute.ok());
    EXPECT_DOUBLE_EQ(fast->cost_elements, brute->cost_elements)
        << i << "x" << k << "x" << j;
    EXPECT_LE(fast->memory_bytes,
              0.9 * static_cast<double>(cluster.task_memory_bytes));
  }
}

TEST(OptimizerTest, ResultIsFeasibleAndParallel) {
  ClusterConfig cluster = ClusterConfig::Paper();
  const MMProblem p = DenseProblem(70000, 70000, 70000, 1000, 0.5);
  auto opt = OptimizeCuboid(p, cluster);
  ASSERT_TRUE(opt.ok());
  EXPECT_GE(opt->spec.num_cuboids(), cluster.total_slots());
  EXPECT_LE(opt->spec.P, p.I());
  EXPECT_LE(opt->spec.Q, p.J());
  EXPECT_LE(opt->spec.R, p.K());
  // No strictly cheaper feasible candidate in a local neighbourhood.
  const double theta = 0.9 * static_cast<double>(cluster.task_memory_bytes);
  for (int64_t dp = -2; dp <= 2; ++dp) {
    for (int64_t dq = -2; dq <= 2; ++dq) {
      for (int64_t dr = -2; dr <= 2; ++dr) {
        CuboidSpec s{opt->spec.P + dp, opt->spec.Q + dq, opt->spec.R + dr};
        if (s.P < 1 || s.Q < 1 || s.R < 1 || s.P > p.I() || s.Q > p.J() ||
            s.R > p.K()) {
          continue;
        }
        if (s.num_cuboids() < cluster.total_slots()) continue;
        if (CuboidMemBytes(p, s) > theta) continue;
        EXPECT_GE(CuboidCostElements(p, s), opt->cost_elements);
      }
    }
  }
}

TEST(OptimizerTest, CommonLargeDimensionPrefersRSplits) {
  // "Two matrices with a common large dimension" (Table 4): the optimum is
  // (1, 1, R) — all partitioning along the k-axis.
  ClusterConfig cluster = ClusterConfig::Paper();
  OptimizerOptions options;
  options.enforce_parallelism = false;  // Table 4 reports (1,1,18) < M·Tc
  const MMProblem p = DenseProblem(10000, 500000, 10000, 1000, 0.5);
  auto opt = OptimizeCuboid(p, cluster, options);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->spec.P, 1);
  EXPECT_EQ(opt->spec.Q, 1);
  EXPECT_GT(opt->spec.R, 8);
}

TEST(OptimizerTest, TwoLargeDimensionsPreferPQSplits) {
  // "Two matrices with two large dimensions": the optimum has R = 1 and
  // large P, Q (Table 4 reports (17, 24, 1) for 500K×1K×500K).
  ClusterConfig cluster = ClusterConfig::Paper();
  const MMProblem p = DenseProblem(500000, 1000, 500000, 1000, 0.5);
  auto opt = OptimizeCuboid(p, cluster);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->spec.R, 1);
  EXPECT_GT(opt->spec.P, 4);
  EXPECT_GT(opt->spec.Q, 4);
}

TEST(OptimizerTest, MaxParallelismFallback) {
  // I·J·K < M·Tc ⇒ (I, J, K), which works like RMM (Section 3.2).
  ClusterConfig cluster = ClusterConfig::Paper();  // 90 slots
  const MMProblem p = DenseProblem(4000, 4000, 4000, 1000);  // 64 voxels
  auto opt = OptimizeCuboid(p, cluster);
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(opt->max_parallelism_fallback);
  EXPECT_EQ(opt->spec.P, 4);
  EXPECT_EQ(opt->spec.Q, 4);
  EXPECT_EQ(opt->spec.R, 4);
}

TEST(OptimizerTest, InfeasibleReturnsOutOfMemory) {
  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.task_memory_bytes = 1 * kMiB;  // even one voxel (24 MB) won't fit
  const MMProblem p = DenseProblem(50000, 50000, 50000, 1000);
  auto opt = OptimizeCuboid(p, cluster);
  ASSERT_FALSE(opt.ok());
  EXPECT_TRUE(opt.status().IsOutOfMemory());
}

TEST(OptimizerTest, ParallelismPruningRaisesTaskCount) {
  ClusterConfig cluster = ClusterConfig::Paper();
  const MMProblem p = DenseProblem(10000, 100000, 10000, 1000, 0.5);
  OptimizerOptions pruned;
  pruned.enforce_parallelism = true;
  OptimizerOptions free;
  free.enforce_parallelism = false;
  auto with = OptimizeCuboid(p, cluster, pruned);
  auto without = OptimizeCuboid(p, cluster, free);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_GE(with->spec.num_cuboids(), cluster.total_slots());
  EXPECT_LE(without->cost_elements, with->cost_elements);
}

TEST(OptimizerTest, BiggerBudgetNeverCostsMore) {
  ClusterConfig small = ClusterConfig::Paper();
  ClusterConfig large = ClusterConfig::Paper();
  large.task_memory_bytes = 4 * small.task_memory_bytes;
  const MMProblem p = DenseProblem(60000, 60000, 60000, 1000, 0.5);
  auto s = OptimizeCuboid(p, small);
  auto l = OptimizeCuboid(p, large);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(l.ok());
  EXPECT_LE(l->cost_elements, s->cost_elements);
}

TEST(OptimizerTest, ElasticToClusterSize) {
  // The "elastic" property: parameters adapt to cluster resources.
  const MMProblem p = DenseProblem(70000, 70000, 70000, 1000, 0.5);
  ClusterConfig small = ClusterConfig::Paper();
  small.num_nodes = 2;
  ClusterConfig big = ClusterConfig::Paper();
  big.num_nodes = 30;
  auto on_small = OptimizeCuboid(p, small);
  auto on_big = OptimizeCuboid(p, big);
  ASSERT_TRUE(on_small.ok());
  ASSERT_TRUE(on_big.ok());
  EXPECT_GE(on_big->spec.num_cuboids(), big.total_slots());
  EXPECT_LT(on_small->cost_elements, on_big->cost_elements);
}

}  // namespace
}  // namespace distme::mm
